//! Structural-Verilog subset parser and writer.
//!
//! Synthesized netlists (the paper's input, produced by a commercial
//! synthesis flow over the NanGate library) are flat structural Verilog.
//! The supported grammar is the subset such flows emit:
//!
//! ```text
//! module top (a, b, y);
//!   input a, b;
//!   output y;
//!   wire n1;
//!   NAND2_X1 u1 (.A1(a), .A2(b), .ZN(n1));
//!   INV_X2 u2 (.A(n1), .ZN(y));
//! endmodule
//! ```
//!
//! Both named (`.A(net)`) and positional (`(y, a, b)` with the output
//! first) connections are accepted. `assign y = n;` aliases are supported
//! as buffers-free name bindings.

use crate::graph::{Netlist, NetlistBuilder, NodeId, NodeKind};
use crate::library::CellLibrary;
use crate::NetlistError;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Parses a structural-Verilog module into a [`Netlist`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for syntax errors,
/// [`NetlistError::UnknownCell`] for cell types missing from `library`,
/// [`NetlistError::UnknownSignal`] for undriven nets, and
/// [`NetlistError::CombinationalCycle`] for cyclic structures.
pub fn parse_verilog(text: &str, library: &Arc<CellLibrary>) -> Result<Netlist, NetlistError> {
    let tokens = tokenize(text)?;
    Parser {
        tokens,
        pos: 0,
        library: Arc::clone(library),
    }
    .parse_module()
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Symbol(char),
    /// 1-based line for diagnostics.
    Line(usize),
}

fn tokenize(text: &str) -> Result<Vec<(Token, usize)>, NetlistError> {
    let mut out = Vec::new();
    let mut in_block_comment = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let mut rest = raw;
        loop {
            if in_block_comment {
                match rest.find("*/") {
                    Some(end) => {
                        rest = &rest[end + 2..];
                        in_block_comment = false;
                    }
                    None => break,
                }
            }
            let code = match rest.find("//") {
                Some(idx) => &rest[..idx],
                None => rest,
            };
            let (code, opened_block) = match code.find("/*") {
                Some(idx) => (&code[..idx], true),
                None => (code, false),
            };
            let mut chars = code.char_indices().peekable();
            while let Some(&(start, ch)) = chars.peek() {
                if ch.is_whitespace() {
                    chars.next();
                } else if ch.is_alphanumeric() || ch == '_' || ch == '\\' || ch == '[' {
                    // Identifier (allowing escaped identifiers and bus bits
                    // like n[3], folded into one name).
                    let mut end = start;
                    while let Some(&(i, c)) = chars.peek() {
                        if c.is_alphanumeric() || "_$\\[]".contains(c) {
                            end = i + c.len_utf8();
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    out.push((Token::Ident(code[start..end].to_owned()), line));
                } else if "();,.=".contains(ch) {
                    out.push((Token::Symbol(ch), line));
                    chars.next();
                } else {
                    return Err(NetlistError::Parse {
                        line,
                        message: format!("unexpected character `{ch}`"),
                    });
                }
            }
            if opened_block {
                // Resume scanning after `/*` for a closing `*/` on this line.
                let after = rest.find("/*").map(|i| &rest[i + 2..]).unwrap_or("");
                match after.find("*/") {
                    Some(end) => {
                        rest = &after[end + 2..];
                        continue;
                    }
                    None => {
                        in_block_comment = true;
                        break;
                    }
                }
            }
            break;
        }
    }
    let _ = Token::Line(0); // variant reserved for future diagnostics
    Ok(out)
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    library: Arc<CellLibrary>,
}

#[derive(Debug)]
struct Instance {
    line: usize,
    cell: String,
    name: String,
    /// Named connections `pin → net`, or positional nets when `named` is
    /// false (output first).
    named: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> NetlistError {
        let line = self
            .tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(0);
        NetlistError::Parse {
            line,
            message: message.into(),
        }
    }

    fn next_token(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_symbol(&mut self, sym: char) -> Result<(), NetlistError> {
        match self.next_token() {
            Some(Token::Symbol(c)) if c == sym => Ok(()),
            other => Err(self.err(format!("expected `{sym}`, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, NetlistError> {
        match self.next_token() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn ident_list_until_semicolon(&mut self) -> Result<Vec<String>, NetlistError> {
        let mut names = Vec::new();
        loop {
            names.push(self.expect_ident()?);
            match self.next_token() {
                Some(Token::Symbol(',')) => continue,
                Some(Token::Symbol(';')) => break,
                other => return Err(self.err(format!("expected `,` or `;`, found {other:?}"))),
            }
        }
        Ok(names)
    }

    fn parse_module(mut self) -> Result<Netlist, NetlistError> {
        match self.next_token() {
            Some(Token::Ident(kw)) if kw == "module" => {}
            other => return Err(self.err(format!("expected `module`, found {other:?}"))),
        }
        let module_name = self.expect_ident()?;
        // Port list (names only; direction comes from declarations).
        self.expect_symbol('(')?;
        loop {
            match self.next_token() {
                Some(Token::Symbol(')')) => break,
                Some(Token::Ident(_)) | Some(Token::Symbol(',')) => continue,
                other => return Err(self.err(format!("bad port list token {other:?}"))),
            }
        }
        self.expect_symbol(';')?;

        let mut inputs: Vec<String> = Vec::new();
        let mut outputs: Vec<String> = Vec::new();
        let mut instances: Vec<Instance> = Vec::new();
        let mut aliases: Vec<(String, String, usize)> = Vec::new(); // (lhs, rhs, line)

        loop {
            let line = self.tokens.get(self.pos).map(|(_, l)| *l).unwrap_or(0);
            match self.next_token() {
                Some(Token::Ident(kw)) if kw == "endmodule" => break,
                Some(Token::Ident(kw)) if kw == "input" => {
                    inputs.extend(self.ident_list_until_semicolon()?);
                }
                Some(Token::Ident(kw)) if kw == "output" => {
                    outputs.extend(self.ident_list_until_semicolon()?);
                }
                Some(Token::Ident(kw)) if kw == "wire" => {
                    // Declarations carry no structure we need.
                    self.ident_list_until_semicolon()?;
                }
                Some(Token::Ident(kw)) if kw == "assign" => {
                    let lhs = self.expect_ident()?;
                    self.expect_symbol('=')?;
                    let rhs = self.expect_ident()?;
                    self.expect_symbol(';')?;
                    aliases.push((lhs, rhs, line));
                }
                Some(Token::Ident(cell)) => {
                    let inst_name = self.expect_ident()?;
                    self.expect_symbol('(')?;
                    let mut inst = Instance {
                        line,
                        cell,
                        name: inst_name,
                        named: Vec::new(),
                        positional: Vec::new(),
                    };
                    loop {
                        match self.next_token() {
                            Some(Token::Symbol(')')) => break,
                            Some(Token::Symbol(',')) => continue,
                            Some(Token::Symbol('.')) => {
                                let pin = self.expect_ident()?;
                                self.expect_symbol('(')?;
                                let net = self.expect_ident()?;
                                self.expect_symbol(')')?;
                                inst.named.push((pin, net));
                            }
                            Some(Token::Ident(net)) => inst.positional.push(net),
                            other => {
                                return Err(self.err(format!("bad connection token {other:?}")))
                            }
                        }
                    }
                    self.expect_symbol(';')?;
                    if !inst.named.is_empty() && !inst.positional.is_empty() {
                        return Err(NetlistError::Parse {
                            line,
                            message: format!(
                                "instance `{}` mixes named and positional connections",
                                inst.name
                            ),
                        });
                    }
                    instances.push(inst);
                }
                other => return Err(self.err(format!("unexpected token {other:?}"))),
            }
        }

        if inputs.is_empty() || outputs.is_empty() {
            return Err(NetlistError::EmptyInterface);
        }

        // Resolve each instance into (output net, cell, input nets in pin
        // order).
        struct GateDef {
            line: usize,
            output_net: String,
            cell: String,
            input_nets: Vec<String>,
        }
        let mut gates = Vec::new();
        for inst in instances {
            let cell_id = self.library.require(&inst.cell)?;
            let cell = self.library.cell(cell_id);
            let (output_net, input_nets) = if !inst.named.is_empty() {
                let mut output_net = None;
                let mut by_pin: HashMap<&str, &str> = HashMap::new();
                for (pin, net) in &inst.named {
                    if pin == cell.output_pin() {
                        output_net = Some(net.clone());
                    } else {
                        by_pin.insert(pin.as_str(), net.as_str());
                    }
                }
                let output_net = output_net.ok_or_else(|| NetlistError::Parse {
                    line: inst.line,
                    message: format!(
                        "instance `{}` lacks output pin `{}`",
                        inst.name,
                        cell.output_pin()
                    ),
                })?;
                let mut input_nets = Vec::with_capacity(cell.num_inputs());
                for pin in cell.input_pins() {
                    let net = by_pin
                        .get(pin.name.as_str())
                        .ok_or_else(|| NetlistError::Parse {
                            line: inst.line,
                            message: format!(
                                "instance `{}` lacks input pin `{}`",
                                inst.name, pin.name
                            ),
                        })?;
                    input_nets.push((*net).to_owned());
                }
                (output_net, input_nets)
            } else {
                // Positional: output first, then inputs in pin order.
                if inst.positional.len() != cell.num_inputs() + 1 {
                    return Err(NetlistError::ArityMismatch {
                        gate: inst.name.clone(),
                        cell: inst.cell.clone(),
                        expected: cell.num_inputs() + 1,
                        got: inst.positional.len(),
                    });
                }
                (inst.positional[0].clone(), inst.positional[1..].to_vec())
            };
            gates.push(GateDef {
                line: inst.line,
                output_net,
                cell: inst.cell,
                input_nets,
            });
        }

        // Apply assign-aliases: an alias `assign y = n` makes `y` another
        // name of net `n`. Map alias → canonical driver name.
        let mut canonical: HashMap<String, String> = HashMap::new();
        for (lhs, rhs, line) in &aliases {
            if canonical.contains_key(lhs) {
                return Err(NetlistError::Parse {
                    line: *line,
                    message: format!("net `{lhs}` assigned twice"),
                });
            }
            canonical.insert(lhs.clone(), rhs.clone());
        }
        let resolve = |name: &str| -> String {
            let mut cur = name.to_owned();
            let mut hops = 0;
            while let Some(next) = canonical.get(&cur) {
                cur = next.clone();
                hops += 1;
                if hops > canonical.len() {
                    break; // alias cycle; caught as unknown signal later
                }
            }
            cur
        };

        // Emit: inputs, then gates in dependency order (same DFS as the
        // bench parser), then outputs.
        let mut builder = NetlistBuilder::new(module_name, &self.library);
        let mut ids: HashMap<String, NodeId> = HashMap::new();
        for pi in &inputs {
            let id = builder.add_input(pi.clone())?;
            ids.insert(pi.clone(), id);
        }
        let index_of: HashMap<String, usize> = gates
            .iter()
            .enumerate()
            .map(|(i, g)| (g.output_net.clone(), i))
            .collect();

        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            Unvisited,
            OnStack,
            Done,
        }
        let mut marks = vec![Mark::Unvisited; gates.len()];
        for start in 0..gates.len() {
            if marks[start] == Mark::Done {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            marks[start] = Mark::OnStack;
            while let Some(&(gi, next)) = stack.last() {
                let g = &gates[gi];
                if next < g.input_nets.len() {
                    stack.last_mut().expect("stack non-empty").1 += 1;
                    let dep = resolve(&g.input_nets[next]);
                    if ids.contains_key(&dep) {
                        continue;
                    }
                    match index_of.get(&dep) {
                        Some(&di) => match marks[di] {
                            Mark::Unvisited => {
                                marks[di] = Mark::OnStack;
                                stack.push((di, 0));
                            }
                            Mark::OnStack => {
                                return Err(NetlistError::CombinationalCycle { node: dep })
                            }
                            Mark::Done => {}
                        },
                        None => return Err(NetlistError::UnknownSignal { signal: dep }),
                    }
                } else {
                    let fanin: Vec<NodeId> =
                        g.input_nets.iter().map(|s| ids[&resolve(s)]).collect();
                    let id = builder.add_gate(g.output_net.clone(), &g.cell, &fanin)?;
                    ids.insert(g.output_net.clone(), id);
                    marks[gi] = Mark::Done;
                    stack.pop();
                    let _ = g.line;
                }
            }
        }

        for po in &outputs {
            let src_name = resolve(po);
            let src = *ids
                .get(&src_name)
                .ok_or_else(|| NetlistError::UnknownSignal {
                    signal: src_name.clone(),
                })?;
            builder.add_output(format!("{po}_po"), src)?;
        }
        builder.finish()
    }
}

/// Serializes a netlist as structural Verilog with named connections.
pub fn write_verilog(netlist: &Netlist) -> String {
    let mut out = String::new();
    let ports: Vec<&str> = netlist
        .inputs()
        .iter()
        .chain(netlist.outputs())
        .map(|&id| netlist.node(id).name())
        .collect();
    let _ = writeln!(
        out,
        "module {} ({});",
        sanitize(netlist.name()),
        ports.join(", ")
    );
    for &pi in netlist.inputs() {
        let _ = writeln!(out, "  input {};", netlist.node(pi).name());
    }
    for &po in netlist.outputs() {
        let _ = writeln!(out, "  output {};", netlist.node(po).name());
    }
    for (_, node) in netlist.iter() {
        if matches!(node.kind(), NodeKind::Gate(_)) {
            let _ = writeln!(out, "  wire {};", node.name());
        }
    }
    let mut inst = 0usize;
    for (id, node) in netlist.iter() {
        if let NodeKind::Gate(_) = node.kind() {
            let cell = netlist.cell_of(id).expect("gate has cell");
            let mut conns: Vec<String> = cell
                .input_pins()
                .iter()
                .zip(node.fanin())
                .map(|(pin, &f)| format!(".{}({})", pin.name, netlist.node(f).name()))
                .collect();
            conns.push(format!(".{}({})", cell.output_pin(), node.name()));
            let _ = writeln!(out, "  {} u{} ({});", cell.name(), inst, conns.join(", "));
            inst += 1;
        }
    }
    // Primary outputs alias their observed net.
    for &po in netlist.outputs() {
        let src = netlist.node(po).fanin()[0];
        let _ = writeln!(
            out,
            "  assign {} = {};",
            netlist.node(po).name(),
            netlist.node(src).name()
        );
    }
    let _ = writeln!(out, "endmodule");
    out
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> Arc<CellLibrary> {
        CellLibrary::nangate15_like()
    }

    const SMALL: &str = "\
// a tiny synthesized module
module top (a, b, y);
  input a, b;
  output y;
  wire n1;
  NAND2_X1 u1 (.A1(a), .A2(b), .ZN(n1));
  INV_X2 u2 (.A(n1), .ZN(n2));
  wire n2;
  assign y = n2;
endmodule
";

    #[test]
    fn parses_named_connections() {
        let n = parse_verilog(SMALL, &lib()).unwrap();
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.outputs().len(), 1);
        assert_eq!(n.num_gates(), 2);
        let g = n.find("n1").unwrap();
        assert_eq!(n.cell_of(g).unwrap().name(), "NAND2_X1");
        // Output observes the inverter through the assign alias.
        let po = n.outputs()[0];
        let src = n.node(po).fanin()[0];
        assert_eq!(n.node(src).name(), "n2");
    }

    #[test]
    fn parses_positional_connections() {
        let text = "\
module pos (a, b, y);
  input a, b;
  output y;
  NOR2_X1 u1 (y, a, b);
endmodule
";
        let n = parse_verilog(text, &lib()).unwrap();
        assert_eq!(n.num_gates(), 1);
        assert_eq!(n.cell_of(n.find("y").unwrap()).unwrap().name(), "NOR2_X1");
    }

    #[test]
    fn block_comments_skipped() {
        let text = "\
module c (a, y); /* ports: a in,
 y out */
  input a;
  output y;
  INV_X1 u0 (.A(a), .ZN(y));
endmodule
";
        let n = parse_verilog(text, &lib()).unwrap();
        assert_eq!(n.num_gates(), 1);
    }

    #[test]
    fn missing_pin_is_error() {
        let text = "\
module m (a, b, y);
  input a, b;
  output y;
  NAND2_X1 u1 (.A1(a), .ZN(y));
endmodule
";
        assert!(matches!(
            parse_verilog(text, &lib()),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn unknown_cell_is_error() {
        let text = "\
module m (a, y);
  input a;
  output y;
  WIDGET_X1 u1 (.A(a), .ZN(y));
endmodule
";
        assert!(matches!(
            parse_verilog(text, &lib()),
            Err(NetlistError::UnknownCell { .. })
        ));
    }

    #[test]
    fn positional_arity_checked() {
        let text = "\
module m (a, y);
  input a;
  output y;
  NAND2_X1 u1 (y, a);
endmodule
";
        assert!(matches!(
            parse_verilog(text, &lib()),
            Err(NetlistError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn undriven_net_is_error() {
        let text = "\
module m (a, y);
  input a;
  output y;
  INV_X1 u1 (.A(ghost), .ZN(y));
endmodule
";
        assert!(matches!(
            parse_verilog(text, &lib()),
            Err(NetlistError::UnknownSignal { .. })
        ));
    }

    #[test]
    fn cycle_detected() {
        let text = "\
module m (a, y);
  input a;
  output y;
  NAND2_X1 u1 (.A1(a), .A2(q), .ZN(p));
  INV_X1 u2 (.A(p), .ZN(q));
  assign y = p;
endmodule
";
        assert!(matches!(
            parse_verilog(text, &lib()),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn out_of_order_instances_resolve() {
        let text = "\
module m (a, y);
  input a;
  output y;
  INV_X1 u2 (.A(n1), .ZN(y));
  INV_X1 u1 (.A(a), .ZN(n1));
endmodule
";
        let n = parse_verilog(text, &lib()).unwrap();
        assert_eq!(n.num_gates(), 2);
    }

    #[test]
    fn roundtrip_through_writer() {
        let n = parse_verilog(SMALL, &lib()).unwrap();
        let text = write_verilog(&n);
        let n2 = parse_verilog(&text, &lib()).unwrap();
        assert_eq!(n.num_gates(), n2.num_gates());
        assert_eq!(n.inputs().len(), n2.inputs().len());
        assert_eq!(n.outputs().len(), n2.outputs().len());
    }
}
