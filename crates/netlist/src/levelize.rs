//! Topological levelization of a netlist.
//!
//! The parallel simulator processes a circuit level by level: all gates
//! whose fan-ins are fully computed form one *level* and are evaluated
//! concurrently (paper Fig. 3, "structural parallelism in simulation slots
//! through level-wise processing"). This module computes that partition.

use crate::graph::{Netlist, NodeId};
use crate::NetlistError;

/// The level assignment of a netlist.
///
/// Primary inputs are level 0; every other node's level is one more than
/// the maximum level of its fan-ins.
///
/// # Example
///
/// ```
/// use avfs_netlist::{CellLibrary, NetlistBuilder, Levelization};
///
/// # fn main() -> Result<(), avfs_netlist::NetlistError> {
/// let lib = CellLibrary::nangate15_like();
/// let mut b = NetlistBuilder::new("chain", &lib);
/// let a = b.add_input("a")?;
/// let g1 = b.add_gate("g1", "INV_X1", &[a])?;
/// let g2 = b.add_gate("g2", "INV_X1", &[g1])?;
/// b.add_output("y", g2)?;
/// let netlist = b.finish()?;
/// let levels = Levelization::of(&netlist)?;
/// assert_eq!(levels.depth(), 4); // PI, g1, g2, PO
/// assert_eq!(levels.level_of(g2), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levelization {
    level_of: Vec<u32>,
    levels: Vec<Vec<NodeId>>,
}

impl Levelization {
    /// Computes the levelization of a netlist.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalLoop`] with a cycle witness if
    /// the netlist contains a combinational feedback loop. Netlists built
    /// through [`crate::NetlistBuilder::finish`] are already acyclic, but
    /// levelization is the simulator's last line of defense against graphs
    /// produced by other means.
    pub fn of(netlist: &Netlist) -> Result<Levelization, NetlistError> {
        let n = netlist.num_nodes();
        let mut level_of = vec![0u32; n];
        let mut max_level = 0u32;
        // Nodes are not necessarily stored topologically (parsers emit them
        // in definition order), so do a proper Kahn traversal.
        let mut indegree: Vec<u32> = netlist
            .nodes()
            .iter()
            .map(|node| node.fanin().len() as u32)
            .collect();
        let mut queue: Vec<NodeId> = netlist
            .iter()
            .filter(|(_, node)| node.fanin().is_empty())
            .map(|(id, _)| id)
            .collect();
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            let lvl = level_of[id.index()];
            max_level = max_level.max(lvl);
            for &s in netlist.node(id).fanout() {
                let si = s.index();
                level_of[si] = level_of[si].max(lvl + 1);
                indegree[si] -= 1;
                if indegree[si] == 0 {
                    queue.push(s);
                }
            }
        }
        if queue.len() != n {
            return Err(NetlistError::CombinationalLoop {
                nodes: cycle_witness(netlist, &indegree),
            });
        }
        let mut levels = vec![Vec::new(); (max_level + 1) as usize];
        for (id, _) in netlist.iter() {
            levels[level_of[id.index()] as usize].push(id);
        }
        Ok(Levelization { level_of, levels })
    }

    /// The level of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn level_of(&self, id: NodeId) -> u32 {
        self.level_of[id.index()]
    }

    /// Number of levels (circuit depth including PI and PO levels).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The nodes of one level.
    ///
    /// # Panics
    ///
    /// Panics if `level >= self.depth()`.
    pub fn level(&self, level: usize) -> &[NodeId] {
        &self.levels[level]
    }

    /// Iterates over levels in topological order.
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> {
        self.levels.iter().map(Vec::as_slice)
    }

    /// All node ids in one flat topological order (level-major).
    pub fn topological_order(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.levels.iter().flatten().copied()
    }

    /// The widest level's size — the upper bound on per-level gate
    /// parallelism.
    pub fn max_width(&self) -> usize {
        self.levels.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Extracts one concrete cycle from the nodes Kahn's algorithm could not
/// resolve (`indegree > 0`). Every such node has at least one unresolved
/// fan-in, so walking unresolved fan-ins must revisit a node — the walk
/// from that first revisit is a cycle.
fn cycle_witness(netlist: &Netlist, indegree: &[u32]) -> Vec<String> {
    let start = match indegree.iter().position(|&d| d > 0) {
        Some(i) => i,
        None => return Vec::new(),
    };
    let mut visited_at = vec![usize::MAX; indegree.len()];
    let mut walk: Vec<usize> = Vec::new();
    let mut cur = start;
    loop {
        if visited_at[cur] != usize::MAX {
            // Cycle closed: walk[visited_at[cur]..] loops back to `cur`.
            let mut nodes: Vec<String> = walk[visited_at[cur]..]
                .iter()
                .map(|&i| netlist.node(NodeId::from_index(i)).name().to_owned())
                .collect();
            // Fan-in order reads driver -> sink along the feedback path.
            nodes.reverse();
            return nodes;
        }
        visited_at[cur] = walk.len();
        walk.push(cur);
        cur = netlist
            .node(NodeId::from_index(cur))
            .fanin()
            .iter()
            .map(|f| f.index())
            .find(|&f| indegree[f] > 0)
            .expect("unresolved node must have an unresolved fan-in");
    }
}

/// Verifies the level invariant: every node's level exceeds all of its
/// fan-ins' levels. Exposed for property tests and debugging.
pub fn check_level_invariant(netlist: &Netlist, levels: &Levelization) -> bool {
    netlist.iter().all(|(id, node)| {
        node.fanin()
            .iter()
            .all(|&f| levels.level_of(f) < levels.level_of(id))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{NetlistBuilder, NodeKind};
    use crate::library::CellLibrary;

    fn diamond() -> Netlist {
        // a ──► g1 ──► g3 ──► y
        //   └─► g2 ──────┘
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("diamond", &lib);
        let a = b.add_input("a").unwrap();
        let g1 = b.add_gate("g1", "INV_X1", &[a]).unwrap();
        let g2 = b.add_gate("g2", "BUF_X1", &[a]).unwrap();
        let g3 = b.add_gate("g3", "NAND2_X1", &[g1, g2]).unwrap();
        b.add_output("y", g3).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn diamond_levels() {
        let n = diamond();
        let lv = Levelization::of(&n).expect("acyclic");
        assert_eq!(lv.depth(), 4);
        assert_eq!(lv.level_of(n.find("a").unwrap()), 0);
        assert_eq!(lv.level_of(n.find("g1").unwrap()), 1);
        assert_eq!(lv.level_of(n.find("g2").unwrap()), 1);
        assert_eq!(lv.level_of(n.find("g3").unwrap()), 2);
        assert_eq!(lv.level_of(n.find("y").unwrap()), 3);
        assert_eq!(lv.max_width(), 2);
        assert!(check_level_invariant(&n, &lv));
    }

    #[test]
    fn unbalanced_paths_take_max() {
        // g3's fanins are at levels 1 and 3 → g3 at level 4.
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("unbalanced", &lib);
        let a = b.add_input("a").unwrap();
        let fast = b.add_gate("fast", "BUF_X1", &[a]).unwrap();
        let s1 = b.add_gate("s1", "INV_X1", &[a]).unwrap();
        let s2 = b.add_gate("s2", "INV_X1", &[s1]).unwrap();
        let s3 = b.add_gate("s3", "INV_X1", &[s2]).unwrap();
        let j = b.add_gate("j", "AND2_X1", &[fast, s3]).unwrap();
        b.add_output("y", j).unwrap();
        let n = b.finish().unwrap();
        let lv = Levelization::of(&n).expect("acyclic");
        assert_eq!(lv.level_of(n.find("j").unwrap()), 4);
        assert!(check_level_invariant(&n, &lv));
    }

    #[test]
    fn levels_partition_all_nodes() {
        let n = diamond();
        let lv = Levelization::of(&n).expect("acyclic");
        let total: usize = lv.iter().map(<[NodeId]>::len).sum();
        assert_eq!(total, n.num_nodes());
        let ordered: Vec<NodeId> = lv.topological_order().collect();
        assert_eq!(ordered.len(), n.num_nodes());
        // Topological property: every fanin appears before its sink.
        let pos: std::collections::HashMap<NodeId, usize> =
            ordered.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        for (id, node) in n.iter() {
            for &f in node.fanin() {
                assert!(pos[&f] < pos[&id]);
            }
        }
    }

    #[test]
    fn combinational_loop_yields_witness() {
        // a ──► g1 ──► g2 ──► y   with g2 rewired back into g1:
        //        ▲______│
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("looped", &lib);
        let a = b.add_input("a").unwrap();
        let g1 = b.add_gate("g1", "NAND2_X1", &[a, a]).unwrap();
        let g2 = b.add_gate("g2", "INV_X1", &[g1]).unwrap();
        b.add_output("y", g2).unwrap();
        b.rewire_unchecked(g1, 1, g2);
        let n = b.finish_unchecked();
        let err = Levelization::of(&n).unwrap_err();
        match err {
            crate::NetlistError::CombinationalLoop { nodes } => {
                let mut sorted = nodes.clone();
                sorted.sort();
                assert_eq!(
                    sorted,
                    ["g1", "g2"],
                    "witness must be the cycle, got {nodes:?}"
                );
            }
            other => panic!("expected CombinationalLoop, got {other:?}"),
        }
    }

    #[test]
    fn self_loop_yields_witness() {
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("self_loop", &lib);
        let a = b.add_input("a").unwrap();
        let g = b.add_gate("g", "NAND2_X1", &[a, a]).unwrap();
        b.add_output("y", g).unwrap();
        b.rewire_unchecked(g, 1, g);
        let n = b.finish_unchecked();
        let err = Levelization::of(&n).unwrap_err();
        assert_eq!(
            err,
            crate::NetlistError::CombinationalLoop {
                nodes: vec!["g".to_owned()]
            }
        );
    }

    #[test]
    fn inputs_are_level_zero_only() {
        let n = diamond();
        let lv = Levelization::of(&n).expect("acyclic");
        for &id in lv.level(0) {
            assert!(matches!(n.node(id).kind(), NodeKind::Input));
        }
    }
}
