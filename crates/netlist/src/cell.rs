//! Cell kinds: logic function × input arity × drive strength.
//!
//! A [`CellKind`] identifies one standard-cell type such as `NAND2_X4`.
//! The Boolean behaviour lives in [`LogicFunction::eval`]; electrical data
//! (pin capacitances, drive currents) lives in the
//! [library](crate::library).

use crate::NetlistError;
use std::fmt;
use std::str::FromStr;

/// The Boolean function a cell computes.
///
/// The complex cells use the conventional pin grouping:
/// * `Aoi21(a, b, c) = !((a ∧ b) ∨ c)`
/// * `Oai21(a, b, c) = !((a ∨ b) ∧ c)`
/// * `Aoi22(a, b, c, d) = !((a ∧ b) ∨ (c ∧ d))`
/// * `Oai22(a, b, c, d) = !((a ∨ b) ∧ (c ∨ d))`
/// * `Mux2(a, b, s) = if s { b } else { a }`
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum LogicFunction {
    /// Non-inverting buffer.
    Buf,
    /// Inverter.
    Inv,
    /// N-input AND.
    And,
    /// N-input NAND.
    Nand,
    /// N-input OR.
    Or,
    /// N-input NOR.
    Nor,
    /// 2-input XOR.
    Xor,
    /// 2-input XNOR.
    Xnor,
    /// AND-OR-invert 2-1.
    Aoi21,
    /// OR-AND-invert 2-1.
    Oai21,
    /// AND-OR-invert 2-2.
    Aoi22,
    /// OR-AND-invert 2-2.
    Oai22,
    /// 2-to-1 multiplexer (select is the last pin).
    Mux2,
}

impl LogicFunction {
    /// Evaluates the function over input values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not valid for this function; gate
    /// construction through [`NetlistBuilder`](crate::graph::NetlistBuilder)
    /// guarantees validity.
    pub fn eval(&self, inputs: &[bool]) -> bool {
        match self {
            LogicFunction::Buf => {
                assert_eq!(inputs.len(), 1, "BUF takes one input");
                inputs[0]
            }
            LogicFunction::Inv => {
                assert_eq!(inputs.len(), 1, "INV takes one input");
                !inputs[0]
            }
            LogicFunction::And => {
                assert!(inputs.len() >= 2, "AND takes ≥ 2 inputs");
                inputs.iter().all(|&x| x)
            }
            LogicFunction::Nand => {
                assert!(inputs.len() >= 2, "NAND takes ≥ 2 inputs");
                !inputs.iter().all(|&x| x)
            }
            LogicFunction::Or => {
                assert!(inputs.len() >= 2, "OR takes ≥ 2 inputs");
                inputs.iter().any(|&x| x)
            }
            LogicFunction::Nor => {
                assert!(inputs.len() >= 2, "NOR takes ≥ 2 inputs");
                !inputs.iter().any(|&x| x)
            }
            LogicFunction::Xor => {
                assert_eq!(inputs.len(), 2, "XOR2 takes two inputs");
                inputs[0] ^ inputs[1]
            }
            LogicFunction::Xnor => {
                assert_eq!(inputs.len(), 2, "XNOR2 takes two inputs");
                !(inputs[0] ^ inputs[1])
            }
            LogicFunction::Aoi21 => {
                assert_eq!(inputs.len(), 3, "AOI21 takes three inputs");
                !((inputs[0] && inputs[1]) || inputs[2])
            }
            LogicFunction::Oai21 => {
                assert_eq!(inputs.len(), 3, "OAI21 takes three inputs");
                !((inputs[0] || inputs[1]) && inputs[2])
            }
            LogicFunction::Aoi22 => {
                assert_eq!(inputs.len(), 4, "AOI22 takes four inputs");
                !((inputs[0] && inputs[1]) || (inputs[2] && inputs[3]))
            }
            LogicFunction::Oai22 => {
                assert_eq!(inputs.len(), 4, "OAI22 takes four inputs");
                !((inputs[0] || inputs[1]) && (inputs[2] || inputs[3]))
            }
            LogicFunction::Mux2 => {
                assert_eq!(inputs.len(), 3, "MUX2 takes three inputs (a, b, s)");
                if inputs[2] {
                    inputs[1]
                } else {
                    inputs[0]
                }
            }
        }
    }

    /// Evaluates the function over 64 slots at once: bit `k` of each input
    /// word holds that input's logic value in lane `k`, and bit `k` of the
    /// result holds lane `k`'s output.
    ///
    /// Bitwise boolean algebra makes every lane independent, so each result
    /// bit equals [`LogicFunction::eval`] applied to the corresponding input
    /// bits — the packed path is exact, not approximate:
    ///
    /// ```
    /// use avfs_netlist::LogicFunction;
    ///
    /// let a = 0b1100;
    /// let b = 0b1010;
    /// let packed = LogicFunction::Nand.eval_lanes(&[a, b]);
    /// for lane in 0..4 {
    ///     let scalar = LogicFunction::Nand.eval(&[a >> lane & 1 == 1, b >> lane & 1 == 1]);
    ///     assert_eq!(packed >> lane & 1 == 1, scalar);
    /// }
    /// ```
    ///
    /// Unused lanes compute garbage-in/garbage-out; callers mask the result
    /// with their live-lane mask.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not valid for this function, exactly like
    /// [`LogicFunction::eval`].
    pub fn eval_lanes(&self, inputs: &[u64]) -> u64 {
        match self {
            LogicFunction::Buf => {
                assert_eq!(inputs.len(), 1, "BUF takes one input");
                inputs[0]
            }
            LogicFunction::Inv => {
                assert_eq!(inputs.len(), 1, "INV takes one input");
                !inputs[0]
            }
            LogicFunction::And => {
                assert!(inputs.len() >= 2, "AND takes ≥ 2 inputs");
                inputs.iter().fold(!0u64, |acc, &x| acc & x)
            }
            LogicFunction::Nand => {
                assert!(inputs.len() >= 2, "NAND takes ≥ 2 inputs");
                !inputs.iter().fold(!0u64, |acc, &x| acc & x)
            }
            LogicFunction::Or => {
                assert!(inputs.len() >= 2, "OR takes ≥ 2 inputs");
                inputs.iter().fold(0u64, |acc, &x| acc | x)
            }
            LogicFunction::Nor => {
                assert!(inputs.len() >= 2, "NOR takes ≥ 2 inputs");
                !inputs.iter().fold(0u64, |acc, &x| acc | x)
            }
            LogicFunction::Xor => {
                assert_eq!(inputs.len(), 2, "XOR2 takes two inputs");
                inputs[0] ^ inputs[1]
            }
            LogicFunction::Xnor => {
                assert_eq!(inputs.len(), 2, "XNOR2 takes two inputs");
                !(inputs[0] ^ inputs[1])
            }
            LogicFunction::Aoi21 => {
                assert_eq!(inputs.len(), 3, "AOI21 takes three inputs");
                !((inputs[0] & inputs[1]) | inputs[2])
            }
            LogicFunction::Oai21 => {
                assert_eq!(inputs.len(), 3, "OAI21 takes three inputs");
                !((inputs[0] | inputs[1]) & inputs[2])
            }
            LogicFunction::Aoi22 => {
                assert_eq!(inputs.len(), 4, "AOI22 takes four inputs");
                !((inputs[0] & inputs[1]) | (inputs[2] & inputs[3]))
            }
            LogicFunction::Oai22 => {
                assert_eq!(inputs.len(), 4, "OAI22 takes four inputs");
                !((inputs[0] | inputs[1]) & (inputs[2] | inputs[3]))
            }
            LogicFunction::Mux2 => {
                assert_eq!(inputs.len(), 3, "MUX2 takes three inputs (a, b, s)");
                let s = inputs[2];
                (inputs[0] & !s) | (inputs[1] & s)
            }
        }
    }

    /// Whether the output is the logical complement of its "body" function
    /// (inverting cells have their fastest transition driven by the output
    /// stage directly).
    pub fn is_inverting(&self) -> bool {
        matches!(
            self,
            LogicFunction::Inv
                | LogicFunction::Nand
                | LogicFunction::Nor
                | LogicFunction::Xnor
                | LogicFunction::Aoi21
                | LogicFunction::Oai21
                | LogicFunction::Aoi22
                | LogicFunction::Oai22
        )
    }

    /// The valid input arities for this function.
    pub fn arity_range(&self) -> std::ops::RangeInclusive<usize> {
        match self {
            LogicFunction::Buf | LogicFunction::Inv => 1..=1,
            LogicFunction::And | LogicFunction::Nand | LogicFunction::Or | LogicFunction::Nor => {
                2..=4
            }
            LogicFunction::Xor | LogicFunction::Xnor => 2..=2,
            LogicFunction::Aoi21 | LogicFunction::Oai21 | LogicFunction::Mux2 => 3..=3,
            LogicFunction::Aoi22 | LogicFunction::Oai22 => 4..=4,
        }
    }

    /// The base name used in cell-type identifiers (`NAND` in `NAND2_X1`).
    pub fn base_name(&self) -> &'static str {
        match self {
            LogicFunction::Buf => "BUF",
            LogicFunction::Inv => "INV",
            LogicFunction::And => "AND",
            LogicFunction::Nand => "NAND",
            LogicFunction::Or => "OR",
            LogicFunction::Nor => "NOR",
            LogicFunction::Xor => "XOR",
            LogicFunction::Xnor => "XNOR",
            LogicFunction::Aoi21 => "AOI21",
            LogicFunction::Oai21 => "OAI21",
            LogicFunction::Aoi22 => "AOI22",
            LogicFunction::Oai22 => "OAI22",
            LogicFunction::Mux2 => "MUX2",
        }
    }

    /// All functions in the synthetic library.
    pub fn all() -> &'static [LogicFunction] {
        &[
            LogicFunction::Buf,
            LogicFunction::Inv,
            LogicFunction::And,
            LogicFunction::Nand,
            LogicFunction::Or,
            LogicFunction::Nor,
            LogicFunction::Xor,
            LogicFunction::Xnor,
            LogicFunction::Aoi21,
            LogicFunction::Oai21,
            LogicFunction::Aoi22,
            LogicFunction::Oai22,
            LogicFunction::Mux2,
        ]
    }
}

/// Output drive strength of a cell (transistor width multiplier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DriveStrength {
    /// Unit drive.
    X1,
    /// Double drive.
    X2,
    /// Quadruple drive.
    X4,
    /// Octuple drive.
    X8,
}

impl DriveStrength {
    /// The width multiplier relative to X1.
    pub fn factor(&self) -> f64 {
        match self {
            DriveStrength::X1 => 1.0,
            DriveStrength::X2 => 2.0,
            DriveStrength::X4 => 4.0,
            DriveStrength::X8 => 8.0,
        }
    }

    /// All strengths in the synthetic library.
    pub fn all() -> &'static [DriveStrength] {
        &[
            DriveStrength::X1,
            DriveStrength::X2,
            DriveStrength::X4,
            DriveStrength::X8,
        ]
    }

    /// The `Xn` suffix used in cell names.
    pub fn suffix(&self) -> &'static str {
        match self {
            DriveStrength::X1 => "X1",
            DriveStrength::X2 => "X2",
            DriveStrength::X4 => "X4",
            DriveStrength::X8 => "X8",
        }
    }
}

impl fmt::Display for DriveStrength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// A concrete cell type: function, input count and drive strength.
///
/// # Example
///
/// ```
/// use avfs_netlist::{CellKind, LogicFunction, DriveStrength};
///
/// let kind: CellKind = "NAND3_X2".parse()?;
/// assert_eq!(kind.function(), LogicFunction::Nand);
/// assert_eq!(kind.num_inputs(), 3);
/// assert_eq!(kind.drive(), DriveStrength::X2);
/// assert_eq!(kind.to_string(), "NAND3_X2");
/// # Ok::<(), avfs_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellKind {
    function: LogicFunction,
    num_inputs: u8,
    drive: DriveStrength,
}

impl CellKind {
    /// Creates a cell kind, validating the arity against the function.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] if `num_inputs` is invalid for
    /// `function`.
    pub fn new(
        function: LogicFunction,
        num_inputs: usize,
        drive: DriveStrength,
    ) -> Result<Self, NetlistError> {
        if !function.arity_range().contains(&num_inputs) {
            return Err(NetlistError::ArityMismatch {
                gate: String::new(),
                cell: function.base_name().to_owned(),
                expected: *function.arity_range().start(),
                got: num_inputs,
            });
        }
        Ok(CellKind {
            function,
            num_inputs: num_inputs as u8,
            drive,
        })
    }

    /// The Boolean function.
    pub fn function(&self) -> LogicFunction {
        self.function
    }

    /// Number of input pins.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs as usize
    }

    /// Output drive strength.
    pub fn drive(&self) -> DriveStrength {
        self.drive
    }

    /// Evaluates the cell's function.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn eval(&self, inputs: &[bool]) -> bool {
        assert_eq!(
            inputs.len(),
            self.num_inputs(),
            "cell {self} evaluated with wrong input count"
        );
        self.function.eval(inputs)
    }

    /// Evaluates the cell's function over 64 packed lanes
    /// (see [`LogicFunction::eval_lanes`]).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn eval_lanes(&self, inputs: &[u64]) -> u64 {
        assert_eq!(
            inputs.len(),
            self.num_inputs(),
            "cell {self} evaluated with wrong input count"
        );
        self.function.eval_lanes(inputs)
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let base = self.function.base_name();
        // Fixed-arity names already encode the arity (XOR2, AOI21, MUX2).
        match self.function {
            LogicFunction::Buf | LogicFunction::Inv => {
                write!(f, "{base}_{}", self.drive)
            }
            LogicFunction::And | LogicFunction::Nand | LogicFunction::Or | LogicFunction::Nor => {
                write!(f, "{base}{}_{}", self.num_inputs, self.drive)
            }
            LogicFunction::Xor | LogicFunction::Xnor => write!(f, "{base}2_{}", self.drive),
            _ => write!(f, "{base}_{}", self.drive),
        }
    }
}

impl FromStr for CellKind {
    type Err = NetlistError;

    /// Parses names like `NAND2_X1`, `INV_X4`, `AOI21_X2`, `MUX2_X1`.
    fn from_str(s: &str) -> Result<Self, NetlistError> {
        let unknown = || NetlistError::UnknownCell { cell: s.to_owned() };
        let (head, drive_str) = s.rsplit_once('_').ok_or_else(unknown)?;
        let drive = match drive_str {
            "X1" => DriveStrength::X1,
            "X2" => DriveStrength::X2,
            "X4" => DriveStrength::X4,
            "X8" => DriveStrength::X8,
            _ => return Err(unknown()),
        };
        // Fixed-arity names first (their digits are part of the base name).
        for (name, function, arity) in [
            ("XOR2", LogicFunction::Xor, 2usize),
            ("XNOR2", LogicFunction::Xnor, 2),
            ("AOI21", LogicFunction::Aoi21, 3),
            ("OAI21", LogicFunction::Oai21, 3),
            ("AOI22", LogicFunction::Aoi22, 4),
            ("OAI22", LogicFunction::Oai22, 4),
            ("MUX2", LogicFunction::Mux2, 3),
            ("BUF", LogicFunction::Buf, 1),
            ("INV", LogicFunction::Inv, 1),
        ] {
            if head == name {
                return CellKind::new(function, arity, drive).map_err(|_| unknown());
            }
        }
        // Variable-arity names: base + digits.
        let split = head
            .find(|ch: char| ch.is_ascii_digit())
            .ok_or_else(unknown)?;
        let (base, digits) = head.split_at(split);
        let arity: usize = digits.parse().map_err(|_| unknown())?;
        let function = match base {
            "AND" => LogicFunction::And,
            "NAND" => LogicFunction::Nand,
            "OR" => LogicFunction::Or,
            "NOR" => LogicFunction::Nor,
            _ => return Err(unknown()),
        };
        CellKind::new(function, arity, drive).map_err(|_| unknown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn truth_tables_two_input() {
        let cases: [(LogicFunction, [bool; 4]); 6] = [
            (LogicFunction::And, [false, false, false, true]),
            (LogicFunction::Nand, [true, true, true, false]),
            (LogicFunction::Or, [false, true, true, true]),
            (LogicFunction::Nor, [true, false, false, false]),
            (LogicFunction::Xor, [false, true, true, false]),
            (LogicFunction::Xnor, [true, false, false, true]),
        ];
        for (func, expect) in cases {
            for (k, &e) in expect.iter().enumerate() {
                let a = k & 1 != 0;
                let b = k & 2 != 0;
                assert_eq!(func.eval(&[a, b]), e, "{func:?}({a},{b})");
            }
        }
    }

    #[test]
    fn truth_tables_unary() {
        assert!(LogicFunction::Buf.eval(&[true]));
        assert!(!LogicFunction::Buf.eval(&[false]));
        assert!(!LogicFunction::Inv.eval(&[true]));
        assert!(LogicFunction::Inv.eval(&[false]));
    }

    #[test]
    fn truth_tables_complex() {
        // AOI21: !((a&b)|c)
        assert!(LogicFunction::Aoi21.eval(&[false, false, false]));
        assert!(!LogicFunction::Aoi21.eval(&[true, true, false]));
        assert!(!LogicFunction::Aoi21.eval(&[false, false, true]));
        // OAI21: !((a|b)&c)
        assert!(LogicFunction::Oai21.eval(&[false, false, true]));
        assert!(!LogicFunction::Oai21.eval(&[true, false, true]));
        assert!(LogicFunction::Oai21.eval(&[true, true, false]));
        // AOI22
        assert!(!LogicFunction::Aoi22.eval(&[true, true, false, false]));
        assert!(!LogicFunction::Aoi22.eval(&[false, false, true, true]));
        assert!(LogicFunction::Aoi22.eval(&[true, false, false, true]));
        // OAI22
        assert!(!LogicFunction::Oai22.eval(&[true, false, false, true]));
        assert!(LogicFunction::Oai22.eval(&[false, false, true, true]));
        // MUX2: s selects
        assert!(!LogicFunction::Mux2.eval(&[false, true, false]));
        assert!(LogicFunction::Mux2.eval(&[false, true, true]));
    }

    #[test]
    fn nary_gates() {
        assert!(LogicFunction::And.eval(&[true, true, true]));
        assert!(!LogicFunction::And.eval(&[true, false, true]));
        assert!(!LogicFunction::Nor.eval(&[false, false, true, false]));
        assert!(LogicFunction::Nor.eval(&[false, false, false, false]));
    }

    #[test]
    fn inverting_classification() {
        assert!(LogicFunction::Nand.is_inverting());
        assert!(LogicFunction::Inv.is_inverting());
        assert!(!LogicFunction::And.is_inverting());
        assert!(!LogicFunction::Buf.is_inverting());
        assert!(!LogicFunction::Mux2.is_inverting());
    }

    #[test]
    fn kind_validation() {
        assert!(CellKind::new(LogicFunction::Nand, 2, DriveStrength::X1).is_ok());
        assert!(CellKind::new(LogicFunction::Nand, 4, DriveStrength::X1).is_ok());
        assert!(CellKind::new(LogicFunction::Nand, 5, DriveStrength::X1).is_err());
        assert!(CellKind::new(LogicFunction::Inv, 2, DriveStrength::X1).is_err());
        assert!(CellKind::new(LogicFunction::Mux2, 3, DriveStrength::X8).is_ok());
    }

    #[test]
    fn name_roundtrip_all_kinds() {
        for &f in LogicFunction::all() {
            for arity in f.arity_range() {
                for &d in DriveStrength::all() {
                    let kind = CellKind::new(f, arity, d).unwrap();
                    let name = kind.to_string();
                    let parsed: CellKind = name.parse().unwrap_or_else(|e| {
                        panic!("failed to re-parse `{name}`: {e}");
                    });
                    assert_eq!(parsed, kind, "roundtrip of `{name}`");
                }
            }
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "", "NAND2", "NAND2_X3", "FOO2_X1", "NAND_X1", "NAND9_X1", "X1_NAND2",
        ] {
            assert!(bad.parse::<CellKind>().is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn drive_factors() {
        assert_eq!(DriveStrength::X1.factor(), 1.0);
        assert_eq!(DriveStrength::X8.factor(), 8.0);
        assert!(DriveStrength::X2 < DriveStrength::X4);
    }

    #[test]
    fn eval_lanes_matches_scalar_for_every_function_and_arity() {
        // Deterministic pseudo-random lane words per input.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for &f in LogicFunction::all() {
            for arity in f.arity_range() {
                let words: Vec<u64> = (0..arity).map(|_| next()).collect();
                let packed = f.eval_lanes(&words);
                for lane in 0..64 {
                    let bits: Vec<bool> = words.iter().map(|w| w >> lane & 1 == 1).collect();
                    assert_eq!(
                        packed >> lane & 1 == 1,
                        f.eval(&bits),
                        "{f:?}/{arity} lane {lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn cell_kind_eval_lanes_checks_arity() {
        let kind = CellKind::new(LogicFunction::Nand, 3, DriveStrength::X1).unwrap();
        assert_eq!(kind.eval_lanes(&[!0, !0, 0]), !0);
        assert_eq!(kind.eval_lanes(&[!0, !0, !0]), 0);
        let r = std::panic::catch_unwind(|| kind.eval_lanes(&[0, 0]));
        assert!(r.is_err(), "wrong input count must panic");
    }

    proptest! {
        #[test]
        fn demorgan_duality(a in any::<bool>(), b in any::<bool>()) {
            // NAND(a,b) == OR(!a,!b); NOR(a,b) == AND(!a,!b)
            prop_assert_eq!(
                LogicFunction::Nand.eval(&[a, b]),
                LogicFunction::Or.eval(&[!a, !b])
            );
            prop_assert_eq!(
                LogicFunction::Nor.eval(&[a, b]),
                LogicFunction::And.eval(&[!a, !b])
            );
        }

        #[test]
        fn aoi_oai_are_complements_of_bodies(
            a in any::<bool>(), b in any::<bool>(),
            c in any::<bool>(), d in any::<bool>(),
        ) {
            prop_assert_eq!(
                LogicFunction::Aoi22.eval(&[a, b, c, d]),
                !((a && b) || (c && d))
            );
            prop_assert_eq!(
                LogicFunction::Oai22.eval(&[a, b, c, d]),
                !((a || b) && (c || d))
            );
        }
    }
}
