//! ISCAS `.bench` netlist format parser and writer.
//!
//! The `.bench` dialect covers the ISCAS'85/'89 benchmark sets the paper
//! evaluates (s38417, s38584, …). Supported syntax:
//!
//! ```text
//! # comment
//! INPUT(G1)
//! OUTPUT(G17)
//! G10 = NAND(G1, G3)
//! G11 = DFF(G10)        # optional, handled per `DffHandling`
//! ```
//!
//! The paper removes all sequential elements assuming full scan ("All
//! sequential elements were removed … and only the combinational logic
//! remained"). [`DffHandling::ScanChain`] performs exactly this
//! transformation: every DFF output becomes a pseudo-primary input and
//! every DFF input is observed by a pseudo-primary output.

use crate::graph::{Netlist, NetlistBuilder, NodeId, NodeKind};
use crate::library::CellLibrary;
use crate::NetlistError;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// How to treat `DFF` primitives during parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DffHandling {
    /// Full-scan transformation: DFF output → pseudo-PI, DFF input →
    /// pseudo-PO (the paper's preparation step).
    #[default]
    ScanChain,
    /// Reject netlists containing DFFs.
    Reject,
}

/// Options for [`parse_bench`].
#[derive(Debug, Clone, Default)]
pub struct BenchOptions {
    /// DFF treatment.
    pub dff: DffHandling,
    /// Drive strength suffix used when mapping `.bench` primitives onto
    /// library cells (`X1` when empty).
    pub drive_suffix: String,
}

/// Parses `.bench` text into a [`Netlist`] over `library`.
///
/// Primitive names map to library cells as `NAND(a,b)` → `NAND2_X1` etc.;
/// `NOT` maps to `INV`, `BUFF`/`BUF` to `BUF`.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed lines,
/// [`NetlistError::UnknownCell`] / [`NetlistError::UnknownSignal`] for
/// unresolvable references, and [`NetlistError::CombinationalCycle`] if the
/// combinational part is cyclic.
pub fn parse_bench(
    name: &str,
    text: &str,
    library: &Arc<CellLibrary>,
    options: &BenchOptions,
) -> Result<Netlist, NetlistError> {
    struct GateDef {
        line: usize,
        output: String,
        func: String,
        inputs: Vec<String>,
    }

    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut gates: Vec<GateDef> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let stripped = raw.split('#').next().unwrap_or("").trim();
        if stripped.is_empty() {
            continue;
        }
        if let Some(rest) = strip_call(stripped, "INPUT") {
            inputs.push(rest.map_err(|m| parse_err(line, m))?);
        } else if let Some(rest) = strip_call(stripped, "OUTPUT") {
            outputs.push(rest.map_err(|m| parse_err(line, m))?);
        } else if let Some((lhs, rhs)) = stripped.split_once('=') {
            let output = lhs.trim().to_owned();
            let rhs = rhs.trim();
            let open = rhs
                .find('(')
                .ok_or_else(|| parse_err(line, format!("expected `func(args)` in `{rhs}`")))?;
            if !rhs.ends_with(')') {
                return Err(parse_err(line, format!("missing `)` in `{rhs}`")));
            }
            let func = rhs[..open].trim().to_ascii_uppercase();
            let args: Vec<String> = rhs[open + 1..rhs.len() - 1]
                .split(',')
                .map(|s| s.trim().to_owned())
                .filter(|s| !s.is_empty())
                .collect();
            if output.is_empty() || func.is_empty() || args.is_empty() {
                return Err(parse_err(line, format!("malformed gate `{stripped}`")));
            }
            gates.push(GateDef {
                line,
                output,
                func,
                inputs: args,
            });
        } else {
            return Err(parse_err(line, format!("unrecognized line `{stripped}`")));
        }
    }

    // Full-scan transform: DFFs become pseudo-PI/PO pairs.
    let mut pseudo_outputs: Vec<(String, String)> = Vec::new(); // (po name, source signal)
    let mut kept_gates = Vec::new();
    for g in gates {
        if g.func == "DFF" {
            match options.dff {
                DffHandling::Reject => {
                    return Err(parse_err(
                        g.line,
                        format!("sequential element `{}` not allowed", g.output),
                    ));
                }
                DffHandling::ScanChain => {
                    if g.inputs.len() != 1 {
                        return Err(parse_err(g.line, "DFF takes exactly one input".to_owned()));
                    }
                    inputs.push(g.output.clone());
                    pseudo_outputs.push((format!("{}_scan_out", g.output), g.inputs[0].clone()));
                }
            }
        } else {
            kept_gates.push(g);
        }
    }

    // Emit in dependency order (definitions may reference later signals).
    let mut builder = NetlistBuilder::new(name, library);
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    for pi in &inputs {
        let id = builder.add_input(pi.clone())?;
        ids.insert(pi.clone(), id);
    }

    let index_of: HashMap<&str, usize> = kept_gates
        .iter()
        .enumerate()
        .map(|(i, g)| (g.output.as_str(), i))
        .collect();
    // Iterative DFS emission with cycle detection.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        Unvisited,
        OnStack,
        Done,
    }
    let mut marks = vec![Mark::Unvisited; kept_gates.len()];
    let drive_suffix = if options.drive_suffix.is_empty() {
        "X1"
    } else {
        &options.drive_suffix
    };
    for start in 0..kept_gates.len() {
        if marks[start] == Mark::Done {
            continue;
        }
        // Stack of (gate index, next fanin to examine).
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        marks[start] = Mark::OnStack;
        while let Some(&(gi, next)) = stack.last() {
            let g = &kept_gates[gi];
            if next < g.inputs.len() {
                stack.last_mut().expect("stack non-empty").1 += 1;
                let dep = &g.inputs[next];
                if ids.contains_key(dep.as_str()) {
                    continue;
                }
                match index_of.get(dep.as_str()) {
                    Some(&di) => match marks[di] {
                        Mark::Unvisited => {
                            marks[di] = Mark::OnStack;
                            stack.push((di, 0));
                        }
                        Mark::OnStack => {
                            return Err(NetlistError::CombinationalCycle { node: dep.clone() });
                        }
                        Mark::Done => {}
                    },
                    None => {
                        return Err(NetlistError::UnknownSignal {
                            signal: dep.clone(),
                        });
                    }
                }
            } else {
                // All fanins resolved: emit the gate.
                let cell_name = map_primitive(&g.func, g.inputs.len(), drive_suffix)
                    .ok_or_else(|| parse_err(g.line, format!("unknown primitive `{}`", g.func)))?;
                let fanin: Vec<NodeId> = g.inputs.iter().map(|s| ids[s.as_str()]).collect();
                let id = builder.add_gate(g.output.clone(), &cell_name, &fanin)?;
                ids.insert(g.output.clone(), id);
                marks[gi] = Mark::Done;
                stack.pop();
            }
        }
    }

    for po in &outputs {
        let src = *ids
            .get(po.as_str())
            .ok_or_else(|| NetlistError::UnknownSignal { signal: po.clone() })?;
        builder.add_output(format!("{po}_po"), src)?;
    }
    for (po_name, src_name) in &pseudo_outputs {
        let src = *ids
            .get(src_name.as_str())
            .ok_or_else(|| NetlistError::UnknownSignal {
                signal: src_name.clone(),
            })?;
        builder.add_output(po_name.clone(), src)?;
    }
    builder.finish()
}

/// Serializes a netlist back to `.bench` text.
///
/// Cell types collapse back to primitives (`NAND2_X4` → `NAND`); drive
/// strengths are not representable in `.bench` and are lost. Complex cells
/// without a `.bench` primitive (AOI/OAI/MUX) are written with their full
/// cell-type name, which [`parse_bench`] does not accept — round-trips are
/// only guaranteed for primitive-compatible netlists.
pub fn write_bench(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", netlist.name());
    for &pi in netlist.inputs() {
        let _ = writeln!(out, "INPUT({})", netlist.node(pi).name());
    }
    for &po in netlist.outputs() {
        // A PO node observes its single fanin; .bench outputs name the
        // observed signal directly.
        let src = netlist.node(po).fanin()[0];
        let _ = writeln!(out, "OUTPUT({})", netlist.node(src).name());
    }
    for (id, node) in netlist.iter() {
        if let NodeKind::Gate(_) = node.kind() {
            let cell = netlist.cell_of(id).expect("gate has a cell");
            let func = match cell.kind().function() {
                crate::cell::LogicFunction::Buf => "BUFF".to_owned(),
                crate::cell::LogicFunction::Inv => "NOT".to_owned(),
                crate::cell::LogicFunction::And => "AND".to_owned(),
                crate::cell::LogicFunction::Nand => "NAND".to_owned(),
                crate::cell::LogicFunction::Or => "OR".to_owned(),
                crate::cell::LogicFunction::Nor => "NOR".to_owned(),
                crate::cell::LogicFunction::Xor => "XOR".to_owned(),
                crate::cell::LogicFunction::Xnor => "XNOR".to_owned(),
                _ => cell.name().to_owned(),
            };
            let args: Vec<&str> = node
                .fanin()
                .iter()
                .map(|&f| netlist.node(f).name())
                .collect();
            let _ = writeln!(out, "{} = {}({})", node.name(), func, args.join(", "));
        }
    }
    out
}

fn parse_err(line: usize, message: impl Into<String>) -> NetlistError {
    NetlistError::Parse {
        line,
        message: message.into(),
    }
}

/// Parses `KEYWORD(arg)`; returns the inner argument.
fn strip_call(s: &str, keyword: &str) -> Option<Result<String, String>> {
    let rest = s.strip_prefix(keyword)?.trim_start();
    let rest = match rest.strip_prefix('(') {
        Some(r) => r,
        None => return Some(Err(format!("expected `(` after {keyword}"))),
    };
    match rest.strip_suffix(')') {
        Some(inner) if !inner.trim().is_empty() => Some(Ok(inner.trim().to_owned())),
        _ => Some(Err(format!("malformed {keyword} declaration"))),
    }
}

/// Maps a `.bench` primitive and arity onto a library cell name.
fn map_primitive(func: &str, arity: usize, drive: &str) -> Option<String> {
    let name = match (func, arity) {
        ("NOT", 1) => format!("INV_{drive}"),
        ("BUF" | "BUFF", 1) => format!("BUF_{drive}"),
        ("AND", 2..=4) => format!("AND{arity}_{drive}"),
        ("NAND", 2..=4) => format!("NAND{arity}_{drive}"),
        ("OR", 2..=4) => format!("OR{arity}_{drive}"),
        ("NOR", 2..=4) => format!("NOR{arity}_{drive}"),
        ("XOR", 2) => format!("XOR2_{drive}"),
        ("XNOR", 2) => format!("XNOR2_{drive}"),
        _ => return None,
    };
    Some(name)
}

/// The ISCAS'85 c17 benchmark, the canonical smallest example.
pub const C17_BENCH: &str = "\
# c17 (ISCAS'85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levelize::Levelization;

    fn lib() -> Arc<CellLibrary> {
        CellLibrary::nangate15_like()
    }

    #[test]
    fn parses_c17() {
        let n = parse_bench("c17", C17_BENCH, &lib(), &BenchOptions::default()).unwrap();
        assert_eq!(n.inputs().len(), 5);
        assert_eq!(n.outputs().len(), 2);
        assert_eq!(n.num_gates(), 6);
        assert_eq!(n.num_nodes(), 13);
        let lv = Levelization::of(&n).expect("acyclic");
        assert_eq!(lv.depth(), 5); // PI, 10/11, 16/19, 22/23, PO
    }

    #[test]
    fn out_of_order_definitions_resolve() {
        let text = "\
INPUT(a)
OUTPUT(y)
y = NOT(m)
m = NAND(a, a2)
INPUT(a2)
";
        let n = parse_bench("ooo", text, &lib(), &BenchOptions::default()).unwrap();
        assert_eq!(n.num_gates(), 2);
        let y = n.find("y").unwrap();
        assert_eq!(n.cell_of(y).unwrap().name(), "INV_X1");
    }

    #[test]
    fn dff_scan_transform() {
        let text = "\
INPUT(a)
OUTPUT(q)
q = DFF(d)
d = NOT(a)
";
        let n = parse_bench("seq", text, &lib(), &BenchOptions::default()).unwrap();
        // q becomes a pseudo-PI; d gets observed by q_scan_out.
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.outputs().len(), 2);
        assert!(n.find("q_scan_out").is_some());
    }

    #[test]
    fn dff_reject_mode() {
        let text = "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n";
        let opts = BenchOptions {
            dff: DffHandling::Reject,
            ..BenchOptions::default()
        };
        assert!(matches!(
            parse_bench("seq", text, &lib(), &opts),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    fn detects_cycles() {
        let text = "\
INPUT(a)
OUTPUT(x)
x = NAND(a, y)
y = NOT(x)
";
        assert!(matches!(
            parse_bench("cyc", text, &lib(), &BenchOptions::default()),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn unknown_signal() {
        let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(ghost)\n";
        assert!(matches!(
            parse_bench("bad", text, &lib(), &BenchOptions::default()),
            Err(NetlistError::UnknownSignal { .. })
        ));
    }

    #[test]
    fn malformed_lines_error_with_location() {
        for (text, bad_line) in [
            ("INPUT a\n", 1),
            ("INPUT(a)\nOUTPUT(y)\ny = NOT(a\n", 3),
            ("INPUT(a)\nwhatever\n", 2),
            ("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n", 3),
        ] {
            match parse_bench("bad", text, &lib(), &BenchOptions::default()) {
                Err(NetlistError::Parse { line, .. }) => assert_eq!(line, bad_line, "{text}"),
                other => panic!("expected parse error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\
# full line comment

INPUT(a)   # trailing comment
OUTPUT(y)
y = NOT(a)
";
        let n = parse_bench("c", text, &lib(), &BenchOptions::default()).unwrap();
        assert_eq!(n.num_nodes(), 3);
    }

    #[test]
    fn drive_suffix_option() {
        let opts = BenchOptions {
            drive_suffix: "X4".to_owned(),
            ..BenchOptions::default()
        };
        let n = parse_bench("c17", C17_BENCH, &lib(), &opts).unwrap();
        let g = n.find("10").unwrap();
        assert_eq!(n.cell_of(g).unwrap().name(), "NAND2_X4");
    }

    #[test]
    fn roundtrip_c17() {
        let n = parse_bench("c17", C17_BENCH, &lib(), &BenchOptions::default()).unwrap();
        let text = write_bench(&n);
        let n2 = parse_bench("c17rt", &text, &lib(), &BenchOptions::default()).unwrap();
        assert_eq!(n.num_nodes(), n2.num_nodes());
        assert_eq!(n.num_gates(), n2.num_gates());
        assert_eq!(n.inputs().len(), n2.inputs().len());
        assert_eq!(n.outputs().len(), n2.outputs().len());
        // Same gate names with same cell types.
        for (id, node) in n.iter() {
            if let NodeKind::Gate(_) = node.kind() {
                let other = n2.find(node.name()).expect("gate survives roundtrip");
                assert_eq!(
                    n.cell_of(id).unwrap().name(),
                    n2.cell_of(other).unwrap().name()
                );
            }
        }
    }
}
