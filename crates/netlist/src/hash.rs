//! Content hashing for cache keys.
//!
//! Compiled-artifact caches (compile-once / simulate-many) key entries by
//! *what the compile consumed* — the netlist's structure, the library's
//! electrical content — not by object identity. [`Fnv1a`] is the shared
//! primitive: 64-bit FNV-1a, streamed field by field with explicit
//! length/ordering framing so structurally different inputs cannot
//! collide by concatenation (`"ab" + "c"` vs `"a" + "bc"`).
//!
//! The hash is deterministic across processes and platforms (floats hash
//! by IEEE-754 bit pattern, integers by little-endian bytes). It is a
//! cache key, not a cryptographic digest.

/// A streaming 64-bit FNV-1a hasher.
///
/// ```
/// use avfs_netlist::hash::Fnv1a;
///
/// let mut h = Fnv1a::new();
/// h.write_str("NAND2_X1");
/// h.write_f64(1.5);
/// let a = h.finish();
/// // Deterministic: the same fields in the same order hash identically.
/// let mut h = Fnv1a::new();
/// h.write_str("NAND2_X1");
/// h.write_f64(1.5);
/// assert_eq!(a, h.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Starts a hash at the FNV-1a offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0100_0000_01b3);
        }
    }

    /// Folds a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `usize` widened to `u64`.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds a float by IEEE-754 bit pattern (`-0.0` and `0.0` therefore
    /// hash differently, and every NaN payload is distinct — exact bits
    /// are what the simulation consumes).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Folds a string, length-framed so adjacent strings cannot blur
    /// into each other.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a("") is the offset basis; FNV-1a("a") is a published
        // test vector.
        assert_eq!(Fnv1a::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn length_framing_separates_adjacent_strings() {
        let mut ab_c = Fnv1a::new();
        ab_c.write_str("ab");
        ab_c.write_str("c");
        let mut a_bc = Fnv1a::new();
        a_bc.write_str("a");
        a_bc.write_str("bc");
        assert_ne!(ab_c.finish(), a_bc.finish());
    }

    #[test]
    fn floats_hash_by_bits() {
        let mut pos = Fnv1a::new();
        pos.write_f64(0.0);
        let mut neg = Fnv1a::new();
        neg.write_f64(-0.0);
        assert_ne!(pos.finish(), neg.finish());
    }
}
