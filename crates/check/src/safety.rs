//! The `SAFETY:` comment lint (`AVC-S001`).
//!
//! Every `unsafe` site in the workspace — block, `unsafe impl`, or
//! `unsafe fn` — must carry an adjacent `// SAFETY:` comment stating the
//! invariant that makes it sound. The interleaving checker
//! ([`protocols`](crate::protocols)) proves the two protocols those
//! comments appeal to; this lint makes sure the comments themselves
//! cannot silently disappear as the code evolves. CI runs it over the
//! whole workspace via `checker --smoke`.
//!
//! # What counts as adjacent
//!
//! Starting from the line holding the `unsafe` token, the lint walks
//! upward and accepts the first comment mentioning `SAFETY:`, skipping:
//!
//! * blank lines,
//! * attribute lines (`#[inline]`, `#[allow(...)]`, …),
//! * *statement continuations* — code lines that do not end in `;`, `{`
//!   or `}`, so `let x =\n    unsafe { … }` finds a comment above the
//!   `let`.
//!
//! Any other code line is a statement boundary and stops the walk: a
//! `SAFETY:` comment three statements up does not annotate this site.
//!
//! The scanner lexes Rust source character-by-character (line/block
//! comments, string/raw-string/char literals), so `unsafe` inside a
//! string or doc comment is never a site, and `SAFETY:` only counts when
//! it appears in an actual comment.

use crate::{cap_findings, Finding};
use std::path::{Path, PathBuf};

/// One source line split into its code and comment parts by the lexer.
#[derive(Debug, Clone, Default)]
struct SourceLine {
    /// Code characters only (comment and literal contents excluded).
    code: String,
    /// Comment characters only (line and block comments).
    comment: String,
}

impl SourceLine {
    fn is_blank(&self) -> bool {
        self.code.trim().is_empty() && self.comment.trim().is_empty()
    }

    fn is_comment_only(&self) -> bool {
        self.code.trim().is_empty() && !self.comment.trim().is_empty()
    }

    fn is_attribute(&self) -> bool {
        let t = self.code.trim_start();
        t.starts_with("#[") || t.starts_with("#![")
    }

    fn has_safety_comment(&self) -> bool {
        self.comment.contains("SAFETY:")
    }

    /// Whether the line ends a statement (so the upward walk must stop).
    fn is_statement_boundary(&self) -> bool {
        matches!(self.code.trim_end().chars().last(), Some(';' | '{' | '}'))
    }
}

/// Where a lexed character lands: code text, comment text, or nowhere
/// (string/char-literal contents, which must influence neither the
/// `unsafe` search nor the `SAFETY:` search).
#[derive(Clone, Copy, PartialEq)]
enum Sink {
    Code,
    Comment,
    Skip,
}

/// Splits `source` into per-line code/comment parts with a small Rust
/// lexer: line comments, nested block comments, string, raw-string,
/// byte-string and char literals are all recognized.
fn lex_lines(source: &str) -> Vec<SourceLine> {
    let mut lines = vec![SourceLine::default()];
    let push = |lines: &mut Vec<SourceLine>, sink: Sink, c: char| {
        if c == '\n' {
            lines.push(SourceLine::default());
            return;
        }
        let line = lines.last_mut().expect("non-empty");
        match sink {
            Sink::Code => line.code.push(c),
            Sink::Comment => line.comment.push(c),
            Sink::Skip => {}
        }
    };
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '/' if chars.get(i + 1) == Some(&'/') => {
                // Line comment (also doc comments) to end of line.
                while i < chars.len() && chars[i] != '\n' {
                    push(&mut lines, Sink::Comment, chars[i]);
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comment, nesting like Rust's.
                let mut depth = 0usize;
                while i < chars.len() {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        push(&mut lines, Sink::Comment, '/');
                        push(&mut lines, Sink::Comment, '*');
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        push(&mut lines, Sink::Comment, '*');
                        push(&mut lines, Sink::Comment, '/');
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        push(&mut lines, Sink::Comment, chars[i]);
                        i += 1;
                    }
                }
            }
            'r' | 'b'
                if (c == 'r' || chars.get(i + 1) == Some(&'r')) && {
                    let mut j = i + if c == 'b' { 2 } else { 1 };
                    while chars.get(j) == Some(&'#') {
                        j += 1;
                    }
                    chars.get(j) == Some(&'"')
                } =>
            {
                // Raw (byte) string: r"…", r#"…"#, br##"…"##, … (a bare
                // b"…" byte string falls through to the plain-string arm
                // on the next character).
                let mut j = i + if c == 'b' { 2 } else { 1 };
                let mut hashes = 0usize;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                // Emit prefix + opening quote as code, then skip the body
                // to past the closing quote+hashes; newlines inside still
                // break lines.
                for &p in &chars[i..=j] {
                    push(&mut lines, Sink::Code, p);
                }
                i = j + 1;
                while i < chars.len() {
                    if chars[i] == '"' {
                        let mut k = 0;
                        while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            push(&mut lines, Sink::Code, '"');
                            i += 1 + hashes;
                            break;
                        }
                    }
                    push(&mut lines, Sink::Skip, chars[i]);
                    i += 1;
                }
            }
            '"' => {
                // String literal (escapes honored, may span lines).
                push(&mut lines, Sink::Code, '"');
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => {
                            push(&mut lines, Sink::Code, '"');
                            i += 1;
                            break;
                        }
                        other => {
                            push(&mut lines, Sink::Skip, other);
                            i += 1;
                        }
                    }
                }
            }
            '\'' => {
                // Char literal vs lifetime: 'x' / '\n' are literals,
                // 'static is a lifetime (no closing quote).
                let is_char_literal = match chars.get(i + 1) {
                    Some('\\') => true,
                    Some(&n) if n != '\'' => chars.get(i + 2) == Some(&'\''),
                    _ => false,
                };
                push(&mut lines, Sink::Code, '\'');
                i += 1;
                if is_char_literal {
                    if chars.get(i) == Some(&'\\') {
                        i += 2; // escape head; scan to the closing quote
                        while i < chars.len() && chars[i] != '\'' {
                            i += 1;
                        }
                    } else {
                        i += 1;
                    }
                    if chars.get(i) == Some(&'\'') {
                        push(&mut lines, Sink::Code, '\'');
                        i += 1;
                    }
                }
            }
            c => {
                push(&mut lines, Sink::Code, c);
                i += 1;
            }
        }
    }
    lines
}

/// Whether `code` contains `unsafe` as a standalone token (so
/// `unsafe_code` in a `forbid` attribute never matches).
fn has_unsafe_token(code: &str) -> bool {
    let bytes = code.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0;
    while let Some(pos) = code[from..].find("unsafe") {
        let start = from + pos;
        let end = start + "unsafe".len();
        let ok_before = start == 0 || !is_ident(bytes[start - 1]);
        let ok_after = end == bytes.len() || !is_ident(bytes[end]);
        if ok_before && ok_after {
            return true;
        }
        from = end;
    }
    false
}

/// Scans one file's source text; `label` names it in finding locations
/// (typically a path relative to the workspace root).
pub fn scan_source(label: &str, source: &str) -> Vec<Finding> {
    let lines = lex_lines(source);
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if !has_unsafe_token(&line.code) {
            continue;
        }
        if line.has_safety_comment() {
            continue; // trailing `// SAFETY:` on the same line
        }
        let mut annotated = false;
        for above in lines[..idx].iter().rev() {
            if above.is_comment_only() || above.is_blank() {
                if above.has_safety_comment() {
                    annotated = true;
                    break;
                }
                continue;
            }
            if above.is_attribute() {
                continue;
            }
            if above.is_statement_boundary() {
                break; // previous statement: its comments don't count
            }
            // Statement continuation (`let x =`): keep walking, but a
            // trailing comment on it may carry the annotation.
            if above.has_safety_comment() {
                annotated = true;
                break;
            }
        }
        if !annotated {
            findings.push(Finding::new(
                "AVC-S001",
                format!("{label}:{}", idx + 1),
                "`unsafe` site has no adjacent `SAFETY:` comment",
            ));
        }
    }
    findings
}

/// Lints every `.rs` file under `root` (skipping `target/` and hidden
/// directories), in deterministic path order, findings capped per rule.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk or file reads.
pub fn lint_unsafe_comments(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rust_files(root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for path in files {
        let source = std::fs::read_to_string(&path)?;
        let label = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .into_owned();
        findings.extend(scan_source(&label, &source));
    }
    Ok(cap_findings(findings))
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotated_block_passes() {
        let src = "fn f(p: *const u8) -> u8 {\n\
                   \x20   // SAFETY: p is valid for reads per the caller contract.\n\
                   \x20   unsafe { *p }\n\
                   }\n";
        assert_eq!(scan_source("a.rs", src), Vec::new());
    }

    #[test]
    fn unannotated_block_flagged_with_line() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let findings = scan_source("a.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "AVC-S001");
        assert_eq!(findings[0].location, "a.rs:2");
    }

    #[test]
    fn continuation_lines_are_walked_through() {
        // The pool.rs shape: comment, then `let … =`, then the unsafe.
        let src = "fn f(job: &Job) {\n\
                   \x20   // SAFETY: the 'static lifetime is confined to this call.\n\
                   \x20   let job: &'static Job =\n\
                   \x20       unsafe { std::mem::transmute(job) };\n\
                   }\n";
        assert_eq!(scan_source("pool.rs", src), Vec::new());
    }

    #[test]
    fn attributes_are_skipped() {
        let src = "// SAFETY: justified above the attribute.\n\
                   #[allow(clippy::undocumented_unsafe_blocks)]\n\
                   unsafe impl Send for T {}\n";
        assert_eq!(scan_source("a.rs", src), Vec::new());
    }

    #[test]
    fn comment_across_statement_boundary_does_not_count() {
        // The pre-fix arena.rs shape: the Send impl's comment must not
        // annotate the Sync impl below it.
        let src = "// SAFETY: mutation goes through the claim protocol.\n\
                   unsafe impl Send for W {}\n\
                   unsafe impl Sync for W {}\n";
        let findings = scan_source("arena.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].location, "arena.rs:3");
    }

    #[test]
    fn unsafe_in_strings_and_comments_is_not_a_site() {
        let src = concat!(
            "// this comment says unsafe { } and is fine\n",
            "/* block comment: unsafe impl Sync */\n",
            "fn f() -> &'static str {\n",
            "    let _lifetime: &'static str = \"unsafe { in a string }\";\n",
            "    r#\"raw string\n",
            "       unsafe { spanning lines }\n",
            "    \"#\n",
            "}\n",
            "#![forbid(unsafe_code)]\n",
        );
        assert_eq!(scan_source("a.rs", src), Vec::new());
    }

    #[test]
    fn trailing_same_line_safety_comment_counts() {
        let src = "fn f(p: *const u8) -> u8 {\n\
                   \x20   unsafe { *p } // SAFETY: p valid per contract\n\
                   }\n";
        assert_eq!(scan_source("a.rs", src), Vec::new());
    }

    #[test]
    fn safety_in_string_literal_does_not_count() {
        // A "SAFETY:" inside a string on the same line must not satisfy
        // the lint — only real comments do.
        let src = "fn f(p: *const u8) -> u8 {\n\
                   \x20   let _caption = \"SAFETY: spoofed\"; unsafe { *p }\n\
                   }\n";
        let findings = scan_source("a.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].location, "a.rs:2");
    }

    #[test]
    fn char_literals_and_lifetimes_do_not_derail_the_lexer() {
        let src = "fn f() {\n\
                   \x20   let q = '\"';\n\
                   \x20   let n = '\\n';\n\
                   \x20   let s: &'static u8 = &0;\n\
                   \x20   let _ = (q, n, s);\n\
                   \x20   unsafe { core::hint::unreachable_unchecked() }\n\
                   }\n";
        // The '"' char literal must not open a string that swallows the
        // unsafe block below it.
        let findings = scan_source("a.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].location, "a.rs:6");
    }

    #[test]
    fn workspace_unsafe_sites_are_all_annotated() {
        // The CI-enforced property: every unsafe site in this repository
        // carries a SAFETY: comment the walk accepts.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let findings = lint_unsafe_comments(root).expect("workspace scan");
        assert_eq!(findings, Vec::new(), "unannotated unsafe: {findings:?}");
    }
}
