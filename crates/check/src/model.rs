//! Tier 2 — lints over fitted delay models.
//!
//! The paper's delay kernel evaluates `1 + f(P)` with `f` a fitted
//! bivariate polynomial (Eq. 9). Fitting is numerical: nothing in the
//! regression pipeline structurally prevents a surface from carrying a
//! NaN coefficient, dipping below `−1` (a non-positive — i.e. negative
//! or zero — delay factor), or violating the physical expectation that
//! gates get *faster* as the supply voltage rises. Any of those silently
//! corrupts every downstream delay. This module audits a
//! [`PolynomialModel`] for all of them, plus the operating points the
//! simulation intends to evaluate it at:
//!
//! * `AVC-D001` — non-finite coefficient in any surface (deny),
//! * `AVC-D002` — factor `1 + f(P) ≤ 0` somewhere on the sampled
//!   characterized grid (deny),
//! * `AVC-D003` — factor increases with supply voltage on the sampled
//!   grid (warn: physically implausible fit),
//! * `AVC-D004` — factor evaluates to NaN/∞ on the grid (deny),
//! * `AVC-D005` — an operating point outside the characterized `(v, c)`
//!   domain (warn: the kernel would extrapolate or clamp).
//!
//! Grid checks sample an evenly spaced [`GRID_SAMPLES`]² lattice over the
//! normalized unit square — the same domain the Horner kernel runs on —
//! so the audit costs `O(cells · pins · GRID_SAMPLES²)` Horner
//! evaluations and nothing else.

use crate::{cap_findings, Finding};
use avfs_delay::{
    CoefficientTable, DelayModel, NormalizedPoint, OperatingPoint, ParameterSpace, PolynomialModel,
};
use avfs_netlist::library::{CellId, Polarity};

/// Samples per normalized axis for the grid checks (81 points per
/// surface): dense enough to catch sign dips of fitted low-order
/// surfaces, cheap enough to run on every engine construction.
pub const GRID_SAMPLES: usize = 9;

/// Slack for the voltage-monotonicity check: fitted surfaces are allowed
/// to rise by this much per grid step before `AVC-D003` fires, so
/// benign sub-ppm regression wiggle does not page anyone.
pub const MONOTONICITY_TOLERANCE: f64 = 1e-6;

fn grid_coord(i: usize) -> f64 {
    i as f64 / (GRID_SAMPLES - 1) as f64
}

/// Audits every characterized surface of `model`: coefficient
/// finiteness (`AVC-D001`) and grid behavior of the factor `1 + f(P)`
/// (`AVC-D002`, `AVC-D003`, `AVC-D004`). Findings are capped per rule.
pub fn lint_polynomial_model(model: &PolynomialModel) -> Vec<Finding> {
    let table = model.table();
    let mut findings = Vec::new();
    for cell_idx in 0..table.num_cells() {
        let cell = CellId::from_index(cell_idx);
        for pin in 0..table.num_pins(cell) {
            for polarity in [Polarity::Rise, Polarity::Fall] {
                let Ok(beta) = table.coefficients(cell, pin, polarity) else {
                    continue;
                };
                let at = surface_location(cell_idx, pin, polarity);
                lint_coefficients(&at, beta, &mut findings);
                // A non-finite coefficient poisons every grid sample;
                // skip the grid lints to avoid cascading noise.
                if beta.iter().all(|b| b.is_finite()) {
                    lint_grid(&at, table, cell, pin, polarity, &mut findings);
                }
            }
        }
    }
    cap_findings(findings)
}

fn surface_location(cell: usize, pin: usize, polarity: Polarity) -> String {
    let pol = match polarity {
        Polarity::Rise => "rise",
        Polarity::Fall => "fall",
    };
    format!("cell{cell}/pin{pin}/{pol}")
}

fn lint_coefficients(at: &str, beta: &[f64], findings: &mut Vec<Finding>) {
    for (k, b) in beta.iter().enumerate() {
        if !b.is_finite() {
            findings.push(Finding::new(
                "AVC-D001",
                at,
                format!("coefficient β[{k}] is {b}"),
            ));
        }
    }
}

fn lint_grid(
    at: &str,
    table: &CoefficientTable,
    cell: CellId,
    pin: usize,
    polarity: Polarity,
    findings: &mut Vec<Finding>,
) {
    // One factor matrix per surface, sampled through the same
    // `deviation` entry point the simulation kernel uses: factors[ci][vi].
    let mut factors = [[0.0f64; GRID_SAMPLES]; GRID_SAMPLES];
    for (ci, row) in factors.iter_mut().enumerate() {
        for (vi, slot) in row.iter_mut().enumerate() {
            let p = NormalizedPoint {
                v: grid_coord(vi),
                c: grid_coord(ci),
            };
            let dev = table
                .deviation(cell, pin, polarity, p)
                .expect("surface exists: coefficients() succeeded");
            *slot = 1.0 + dev;
        }
    }
    let mut worst_nonpos: Option<(f64, usize, usize)> = None;
    let mut worst_rise: Option<(f64, usize, usize)> = None;
    for (ci, row) in factors.iter().enumerate() {
        for (vi, &f) in row.iter().enumerate() {
            if !f.is_finite() {
                findings.push(Finding::new(
                    "AVC-D004",
                    at,
                    format!(
                        "factor is {f} at normalized (v={:.3}, c={:.3})",
                        grid_coord(vi),
                        grid_coord(ci)
                    ),
                ));
                return; // grid is poisoned; one finding suffices
            }
            if f <= 0.0 && worst_nonpos.is_none_or(|(w, _, _)| f < w) {
                worst_nonpos = Some((f, vi, ci));
            }
            if vi > 0 {
                let rise = f - row[vi - 1];
                if rise > MONOTONICITY_TOLERANCE && worst_rise.is_none_or(|(w, _, _)| rise > w) {
                    worst_rise = Some((rise, vi, ci));
                }
            }
        }
    }
    if let Some((f, vi, ci)) = worst_nonpos {
        findings.push(Finding::new(
            "AVC-D002",
            at,
            format!(
                "factor 1 + f(P) = {f:.6} ≤ 0 at normalized (v={:.3}, c={:.3})",
                grid_coord(vi),
                grid_coord(ci)
            ),
        ));
    }
    if let Some((rise, vi, ci)) = worst_rise {
        findings.push(Finding::new(
            "AVC-D003",
            at,
            format!(
                "factor rises by {rise:.6} from v={:.3} to v={:.3} at c={:.3} \
                 (gates should speed up with voltage)",
                grid_coord(vi - 1),
                grid_coord(vi),
                grid_coord(ci)
            ),
        ));
    }
}

/// Checks one intended operating point against the characterized domain
/// (`AVC-D005`). `location` names the point in findings (e.g. `slot 3`).
pub fn lint_operating_point(
    space: &ParameterSpace,
    location: &str,
    op: OperatingPoint,
) -> Option<Finding> {
    if space.contains(op) {
        return None;
    }
    let (v_min, v_max) = space.voltage_range();
    let (c_min, c_max) = space.load_range();
    Some(Finding::new(
        "AVC-D005",
        location,
        format!(
            "operating point (v={} V, c={} fF) outside characterized \
             [{v_min}, {v_max}] V × [{c_min}, {c_max}] fF",
            op.voltage, op.load_ff
        ),
    ))
}

/// Batch form of [`lint_operating_point`], capped per rule.
pub fn lint_operating_points(
    space: &ParameterSpace,
    points: &[(String, OperatingPoint)],
) -> Vec<Finding> {
    cap_findings(
        points
            .iter()
            .filter_map(|(loc, op)| lint_operating_point(space, loc, *op))
            .collect(),
    )
}

/// Convenience: full tier-2 audit of a model plus its intended operating
/// points.
pub fn lint_model(model: &PolynomialModel, points: &[(String, OperatingPoint)]) -> Vec<Finding> {
    let mut findings = lint_polynomial_model(model);
    findings.extend(lint_operating_points(model.space(), points));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_delay::{CoefficientTable, SurfacePolynomial};

    fn surface(order: usize, coeffs: Vec<f64>) -> SurfacePolynomial {
        SurfacePolynomial::new(order, coeffs).unwrap()
    }

    /// `f(v, c) = 0.3 − 0.4·v`: finite, factor ∈ [0.9, 1.3] > 0, strictly
    /// decreasing in v — a physically sane fit.
    fn sane_surface() -> SurfacePolynomial {
        surface(1, vec![0.3, 0.0, -0.4, 0.0])
    }

    fn model_of(surfaces: Vec<[SurfacePolynomial; 2]>) -> PolynomialModel {
        let order = surfaces[0][0].order();
        let mut table = CoefficientTable::new(2, order);
        table.insert(CellId::from_index(0), &surfaces).unwrap();
        PolynomialModel::new(table, ParameterSpace::paper())
    }

    #[test]
    fn sane_model_is_clean() {
        let m = model_of(vec![[sane_surface(), sane_surface()]]);
        assert_eq!(lint_polynomial_model(&m), Vec::new());
    }

    #[test]
    fn nan_coefficient_flagged_and_grid_skipped() {
        let bad = surface(1, vec![0.1, f64::NAN, 0.0, 0.0]);
        let m = model_of(vec![[bad, sane_surface()]]);
        let findings = lint_polynomial_model(&m);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "AVC-D001");
        assert_eq!(findings[0].location, "cell0/pin0/rise");
        assert!(findings[0].message.contains("β[1]"));
    }

    #[test]
    fn non_positive_factor_flagged() {
        // f = −0.5 − v: factor 0.5 − v ≤ 0 for v ≥ 0.5.
        let bad = surface(1, vec![-0.5, 0.0, -1.0, 0.0]);
        let m = model_of(vec![[sane_surface(), bad]]);
        let findings = lint_polynomial_model(&m);
        let d002: Vec<&Finding> = findings.iter().filter(|f| f.rule == "AVC-D002").collect();
        assert_eq!(d002.len(), 1);
        assert_eq!(d002[0].location, "cell0/pin0/fall");
        // The worst (most negative) grid point is reported: v=1 → −0.5.
        assert!(d002[0].message.contains("-0.5"));
    }

    #[test]
    fn voltage_monotonicity_violation_is_warn() {
        // f = 0.4·v: factor increases with voltage — implausible.
        let bad = surface(1, vec![0.0, 0.0, 0.4, 0.0]);
        let m = model_of(vec![[bad, sane_surface()]]);
        let findings = lint_polynomial_model(&m);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "AVC-D003");
        assert_eq!(findings[0].severity, crate::Severity::Warn);
    }

    #[test]
    fn infinite_factor_reported_once_per_surface() {
        // Huge coefficients overflow the factor to ∞ on the grid without
        // any single coefficient being non-finite.
        let bad = surface(1, vec![f64::MAX, 0.0, f64::MAX, 0.0]);
        let m = model_of(vec![[bad.clone(), bad]]);
        let findings = lint_polynomial_model(&m);
        let d004: Vec<&Finding> = findings.iter().filter(|f| f.rule == "AVC-D004").collect();
        assert_eq!(d004.len(), 2, "one per polarity surface: {findings:?}");
    }

    #[test]
    fn out_of_domain_operating_points_flagged() {
        let space = ParameterSpace::paper();
        assert!(lint_operating_point(&space, "slot 0", OperatingPoint::new(0.8, 4.0)).is_none());
        let f =
            lint_operating_point(&space, "slot 1", OperatingPoint::new(0.3, 4.0)).expect("flagged");
        assert_eq!(f.rule, "AVC-D005");
        assert!(f.message.contains("0.3"));
        let points = vec![
            ("slot 0".to_string(), OperatingPoint::new(0.8, 4.0)),
            ("slot 1".to_string(), OperatingPoint::new(1.2, 4.0)),
            ("node 7".to_string(), OperatingPoint::new(0.8, 500.0)),
        ];
        let findings = lint_operating_points(&space, &points);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.rule == "AVC-D005"));
    }

    #[test]
    fn lint_model_combines_tiers() {
        let m = model_of(vec![[sane_surface(), sane_surface()]]);
        let points = vec![("slot 0".to_string(), OperatingPoint::new(2.0, 4.0))];
        let findings = lint_model(&m, &points);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "AVC-D005");
    }
}
