//! Models of the engine's lock-free protocols, checked exhaustively.
//!
//! These mirror the real implementations step-for-step at the atomic
//! granularity of the code:
//!
//! * **Claim protocol** (`avfs-waveform`'s `WaveformArena`): each writer
//!   performs one `fetch_or(AcqRel)` on the per-cell claim bitmap; the
//!   thread that observes the bit clear is the *single winner* and gains
//!   exclusive write access to the cell's transition storage. Writers
//!   that hit arena overflow skip the claim entirely and leave the cell
//!   unclaimed for quarantine-and-retry.
//! * **Lane-claim protocol** (`avfs-waveform`'s `claim_run` /
//!   `write_constant_run`): the lane-major generalization — one
//!   `fetch_or(AcqRel)` claims a whole lane *mask* of a run's claim word
//!   and the writer wins exactly the bits it observed clear, so the
//!   single-winner invariant must hold per lane even when racing masks
//!   overlap on some lanes and not others.
//! * **Epoch protocol** (`avfs-core`'s `WorkerPool`): the coordinator
//!   publishes a job, bumps the epoch counter to release parked workers,
//!   then waits for the running count to drain back to zero before
//!   invalidating the job and publishing the next one.
//!
//! Each `check_*` function explores **every** interleaving of the model
//! via [`explore`] and returns the exploration statistics, or a failing
//! schedule as a witness. The `tests` module additionally contains
//! deliberately broken variants (non-atomic claim, barrier-free
//! coordinator) proving the checker detects the races these protocols
//! are designed to prevent.

use crate::interleave::{explore, Explored, InterleaveError, StepResult, ThreadModel};
use crate::Finding;

/// Upper bound on modeled writers/workers: exploration is factorial in
/// thread count, and lock-free protocol bugs manifest by 2–3 threads.
pub const MAX_MODEL_THREADS: usize = 3;

// ---------------------------------------------------------------------
// Claim protocol (WaveformArena per-cell claim bitmap)
// ---------------------------------------------------------------------

/// Shared state of the claim model: one cell of the claim bitmap plus
/// instrumentation observing the exclusivity the protocol must provide.
#[derive(Clone, Debug)]
struct ClaimState {
    /// The cell's claim bit (one bit of the real `AtomicU64` bitmap).
    claimed: bool,
    /// Writers currently inside the cell's write section. The claim
    /// protocol exists to make this never exceed one.
    writers_in_section: u32,
    /// Which writer's payload the cell holds.
    cell_value: Option<usize>,
    /// Total writes performed on the cell.
    writes: u32,
    /// Threads that observed themselves as the claim winner.
    winners: u32,
}

/// One writer thread racing to claim and fill the cell.
#[derive(Clone)]
struct ClaimWriter {
    id: usize,
    /// Writers past the arena's capacity watermark take the overflow
    /// path: no claim, no write (the cell is left for quarantine).
    overflow: bool,
    pc: u8,
}

impl ThreadModel<ClaimState> for ClaimWriter {
    fn step(&mut self, shared: &mut ClaimState) -> StepResult {
        if self.overflow {
            // Overflow path: bail before touching the claim bitmap.
            return StepResult::Finished;
        }
        match self.pc {
            0 => {
                // fetch_or(bit, AcqRel): one atomic step.
                let prev = shared.claimed;
                shared.claimed = true;
                if prev {
                    return StepResult::Finished; // lost the claim
                }
                shared.winners += 1;
                self.pc = 1;
                StepResult::Ran
            }
            1 => {
                shared.writers_in_section += 1;
                self.pc = 2;
                StepResult::Ran
            }
            2 => {
                shared.cell_value = Some(self.id);
                shared.writes += 1;
                self.pc = 3;
                StepResult::Ran
            }
            _ => {
                shared.writers_in_section -= 1;
                StepResult::Finished
            }
        }
    }
}

fn claim_invariant(s: &ClaimState) -> Result<(), String> {
    if s.writers_in_section > 1 {
        return Err(format!(
            "{} writers inside the cell's write section",
            s.writers_in_section
        ));
    }
    if s.winners > 1 {
        return Err(format!("{} threads won the claim for one cell", s.winners));
    }
    Ok(())
}

/// Checks the single-winner claim invariant over `writers` racing
/// threads (clamped to [`MAX_MODEL_THREADS`]), with `overflow_writers`
/// additional threads taking the arena-overflow bail-out path.
///
/// # Errors
///
/// Returns the failing schedule if any interleaving admits two winners,
/// two concurrent writers, a lost write, or an overflow-path write.
pub fn check_claim_protocol(
    writers: usize,
    overflow_writers: usize,
) -> Result<Explored, InterleaveError> {
    let writers = writers.clamp(1, MAX_MODEL_THREADS);
    let mut threads: Vec<ClaimWriter> = (0..writers)
        .map(|id| ClaimWriter {
            id,
            overflow: false,
            pc: 0,
        })
        .collect();
    threads.extend(
        (0..overflow_writers.min(MAX_MODEL_THREADS)).map(|i| ClaimWriter {
            id: writers + i,
            overflow: true,
            pc: 0,
        }),
    );
    let shared = ClaimState {
        claimed: false,
        writers_in_section: 0,
        cell_value: None,
        writes: 0,
        winners: 0,
    };
    let normal = writers;
    explore(&shared, &threads, &claim_invariant, &|s| {
        if s.winners != 1 {
            return Err(format!("expected exactly one winner, saw {}", s.winners));
        }
        if s.writes != 1 {
            return Err(format!("cell written {} times, want exactly 1", s.writes));
        }
        match s.cell_value {
            Some(id) if id < normal => Ok(()),
            Some(id) => Err(format!("overflow writer {id} wrote the cell")),
            None => Err("claim won but cell never written".into()),
        }
    })
}

// ---------------------------------------------------------------------
// Lane-claim protocol (WaveformArena masked run claims)
// ---------------------------------------------------------------------

/// Lanes in the lane-claim model. Two suffice: every masked-claim race is
/// a per-bit race, and the interesting schedules are writers whose masks
/// overlap on one lane while differing on another.
const MODEL_LANES: usize = 2;

/// Shared state of the lane-claim model: one claim *word* covering the
/// lanes of a run, plus per-lane instrumentation. This mirrors
/// `claim_run` in `avfs-waveform`: a writer claims a whole lane mask with
/// one `fetch_or(AcqRel)` and wins exactly the bits it observed clear.
#[derive(Clone, Debug)]
struct LaneClaimState {
    /// The run's claim bits (a window of the real `AtomicU64` bitmap).
    claimed: u64,
    /// Writers currently inside each lane's write section.
    writers_in_section: [u32; MODEL_LANES],
    /// Which writer's payload each lane holds.
    lane_value: [Option<usize>; MODEL_LANES],
    /// Writes performed on each lane.
    writes: [u32; MODEL_LANES],
    /// Threads that observed themselves as each lane's claim winner.
    winners: [u32; MODEL_LANES],
}

/// One writer racing to claim a lane mask and fill its won lanes.
#[derive(Clone)]
struct LaneClaimWriter {
    id: usize,
    /// The lane mask this writer claims (quiet lanes of its gate run).
    mask: u64,
    /// Lanes actually won by the single `fetch_or`.
    won: u64,
    /// Writers past the capacity watermark skip the claim entirely.
    overflow: bool,
    /// Program counter: 0 = claim, then per-lane enter/write/leave.
    pc: u8,
}

impl ThreadModel<LaneClaimState> for LaneClaimWriter {
    fn step(&mut self, shared: &mut LaneClaimState) -> StepResult {
        if self.overflow {
            return StepResult::Finished;
        }
        if self.pc == 0 {
            // fetch_or(mask, AcqRel): one atomic step claims every lane
            // of the mask at once; the bits observed clear are won.
            let prev = shared.claimed;
            shared.claimed |= self.mask;
            self.won = self.mask & !prev;
            if self.won == 0 {
                return StepResult::Finished; // lost every lane
            }
            for lane in 0..MODEL_LANES {
                if self.won & (1 << lane) != 0 {
                    shared.winners[lane] += 1;
                }
            }
            self.pc = 1;
            return StepResult::Ran;
        }
        // Per-lane write section, one lane per scheduling step — the
        // masked constant store of `write_constant_run` iterates its won
        // bits without further synchronization.
        let step = self.pc - 1;
        let lane = (step / 3) as usize;
        if lane >= MODEL_LANES {
            return StepResult::Finished;
        }
        if self.won & (1 << lane) == 0 {
            // Lost (or never claimed) this lane: skip its three steps.
            self.pc += 3;
            return StepResult::Ran;
        }
        match step % 3 {
            0 => shared.writers_in_section[lane] += 1,
            1 => {
                shared.lane_value[lane] = Some(self.id);
                shared.writes[lane] += 1;
            }
            _ => shared.writers_in_section[lane] -= 1,
        }
        self.pc += 1;
        StepResult::Ran
    }
}

fn lane_claim_invariant(s: &LaneClaimState) -> Result<(), String> {
    for lane in 0..MODEL_LANES {
        if s.writers_in_section[lane] > 1 {
            return Err(format!(
                "{} writers inside lane {lane}'s write section",
                s.writers_in_section[lane]
            ));
        }
        if s.winners[lane] > 1 {
            return Err(format!(
                "{} threads won the claim for lane {lane}",
                s.winners[lane]
            ));
        }
    }
    Ok(())
}

/// Checks the per-lane single-winner invariant of masked run claims:
/// `masks[i]` is writer `i`'s claim mask (clamped to
/// [`MAX_MODEL_THREADS`] writers over `MODEL_LANES` = 2 lanes), with
/// `overflow_writers` additional threads taking the capacity bail-out
/// path (mask held but never claimed).
///
/// # Errors
///
/// Returns the failing schedule if any interleaving admits two winners of
/// one lane, two concurrent writers in one lane's section, a covered lane
/// left unwritten, or an overflow-path write.
pub fn check_lane_claim_protocol(
    masks: &[u64],
    overflow_writers: usize,
) -> Result<Explored, InterleaveError> {
    let lane_mask = (1u64 << MODEL_LANES) - 1;
    let mut threads: Vec<LaneClaimWriter> = masks
        .iter()
        .take(MAX_MODEL_THREADS)
        .enumerate()
        .map(|(id, &mask)| LaneClaimWriter {
            id,
            mask: mask & lane_mask,
            won: 0,
            overflow: false,
            pc: 0,
        })
        .collect();
    let normal = threads.len();
    threads.extend(
        (0..overflow_writers.min(MAX_MODEL_THREADS)).map(|i| LaneClaimWriter {
            id: normal + i,
            mask: lane_mask,
            won: 0,
            overflow: true,
            pc: 0,
        }),
    );
    let covered: u64 = threads
        .iter()
        .filter(|t| !t.overflow)
        .fold(0, |acc, t| acc | t.mask);
    let shared = LaneClaimState {
        claimed: 0,
        writers_in_section: [0; MODEL_LANES],
        lane_value: [None; MODEL_LANES],
        writes: [0; MODEL_LANES],
        winners: [0; MODEL_LANES],
    };
    explore(&shared, &threads, &lane_claim_invariant, &|s| {
        for lane in 0..MODEL_LANES {
            if covered & (1 << lane) == 0 {
                if s.writes[lane] != 0 {
                    return Err(format!("uncovered lane {lane} was written"));
                }
                continue;
            }
            if s.winners[lane] != 1 {
                return Err(format!(
                    "lane {lane}: expected exactly one winner, saw {}",
                    s.winners[lane]
                ));
            }
            if s.writes[lane] != 1 {
                return Err(format!(
                    "lane {lane} written {} times, want exactly 1",
                    s.writes[lane]
                ));
            }
            match s.lane_value[lane] {
                Some(id) if id < normal => {}
                Some(id) => return Err(format!("overflow writer {id} wrote lane {lane}")),
                None => return Err(format!("lane {lane} claim won but never written")),
            }
        }
        Ok(())
    })
}

// ---------------------------------------------------------------------
// Epoch protocol (WorkerPool publish → release → drain barrier)
// ---------------------------------------------------------------------

/// Shared state of the epoch model.
#[derive(Clone, Debug)]
struct EpochState {
    /// The generation counter workers park on.
    epoch: u64,
    /// Whether the published job pointer is currently valid. The real
    /// pool erases the job's lifetime; reading it after the coordinator
    /// invalidates it is the use-after-free this model hunts.
    job_valid: bool,
    /// Which epoch the published job belongs to.
    job_epoch: u64,
    /// Workers still running the current epoch's job.
    remaining: u32,
    /// Jobs executed across all epochs and workers.
    completed: u64,
    /// Set by a worker that read the job while invalid or stale.
    bad_read: Option<String>,
}

/// The coordinator: publishes each epoch's job, releases workers, then
/// drains the barrier before invalidating the job.
#[derive(Clone)]
struct Coordinator {
    workers: u32,
    epochs: u64,
    current: u64,
    pc: u8,
    /// When false, skip the drain wait — the broken variant used by
    /// tests to prove the checker catches use-after-invalidate.
    barrier: bool,
}

impl ThreadModel<EpochState> for Coordinator {
    fn step(&mut self, shared: &mut EpochState) -> StepResult {
        match self.pc {
            0 => {
                // Publish the next epoch's job while workers are parked.
                self.current += 1;
                shared.job_valid = true;
                shared.job_epoch = self.current;
                shared.remaining = self.workers;
                self.pc = 1;
                StepResult::Ran
            }
            1 => {
                // Bump the epoch: the release that unparks workers.
                shared.epoch = self.current;
                self.pc = 2;
                StepResult::Ran
            }
            _ => {
                // Drain barrier: wait for the running count to hit zero.
                if self.barrier && shared.remaining > 0 {
                    return StepResult::Blocked;
                }
                shared.job_valid = false;
                if self.current == self.epochs {
                    StepResult::Finished
                } else {
                    self.pc = 0;
                    StepResult::Ran
                }
            }
        }
    }
}

/// A pool worker: park on the epoch, read the job, signal completion.
#[derive(Clone)]
struct Worker {
    seen: u64,
    epochs: u64,
    pc: u8,
}

impl ThreadModel<EpochState> for Worker {
    fn step(&mut self, shared: &mut EpochState) -> StepResult {
        match self.pc {
            0 => {
                // Park: condvar wait until the epoch moves past `seen`.
                if shared.epoch == self.seen {
                    return if self.seen == self.epochs {
                        StepResult::Finished
                    } else {
                        StepResult::Blocked
                    };
                }
                self.seen = shared.epoch;
                self.pc = 1;
                StepResult::Ran
            }
            1 => {
                // Execute the job: the read the barrier must protect.
                if !shared.job_valid {
                    shared.bad_read = Some(format!(
                        "worker read invalidated job in epoch {}",
                        self.seen
                    ));
                } else if shared.job_epoch != self.seen {
                    shared.bad_read = Some(format!(
                        "worker in epoch {} read job for epoch {}",
                        self.seen, shared.job_epoch
                    ));
                }
                shared.completed += 1;
                self.pc = 2;
                StepResult::Ran
            }
            _ => {
                // fetch_sub on the running count.
                shared.remaining -= 1;
                self.pc = 0;
                StepResult::Ran
            }
        }
    }
}

fn epoch_invariant(s: &EpochState) -> Result<(), String> {
    if let Some(bad) = &s.bad_read {
        return Err(bad.clone());
    }
    Ok(())
}

fn check_epoch(workers: usize, epochs: u64, barrier: bool) -> Result<Explored, InterleaveError> {
    let workers = workers.clamp(1, MAX_MODEL_THREADS - 1);
    let coordinator = Coordinator {
        workers: workers as u32,
        epochs,
        current: 0,
        pc: 0,
        barrier,
    };
    let worker = Worker {
        seen: 0,
        epochs,
        pc: 0,
    };
    let shared = EpochState {
        epoch: 0,
        job_valid: false,
        job_epoch: 0,
        remaining: 0,
        completed: 0,
        bad_read: None,
    };
    // Heterogeneous threads: box-free dispatch via a small enum.
    #[derive(Clone)]
    enum Role {
        Coordinator(Coordinator),
        Worker(Worker),
    }
    impl ThreadModel<EpochState> for Role {
        fn step(&mut self, shared: &mut EpochState) -> StepResult {
            match self {
                Role::Coordinator(c) => c.step(shared),
                Role::Worker(w) => w.step(shared),
            }
        }
    }
    let mut threads = vec![Role::Coordinator(coordinator)];
    threads.extend((0..workers).map(|_| Role::Worker(worker.clone())));
    let expect = workers as u64 * epochs;
    explore(&shared, &threads, &epoch_invariant, &|s| {
        if s.completed != expect {
            return Err(format!("{} jobs completed, want {expect}", s.completed));
        }
        if s.job_valid {
            return Err("job still valid after shutdown".into());
        }
        Ok(())
    })
}

/// Checks the epoch-barrier release protocol: `workers` pool threads and
/// one coordinator across `epochs` publish/release/drain rounds. Proves
/// no worker ever observes an invalidated or stale job and every job
/// runs exactly once per worker per epoch.
///
/// # Errors
///
/// Returns the failing schedule if any interleaving admits a stale or
/// use-after-invalidate job read, a lost job, or a deadlock.
pub fn check_epoch_protocol(workers: usize, epochs: u64) -> Result<Explored, InterleaveError> {
    check_epoch(workers, epochs, true)
}

// ---------------------------------------------------------------------
// Audit entry point
// ---------------------------------------------------------------------

/// Outcome of one protocol exploration, for report embedding.
#[derive(Debug, Clone)]
pub struct ProtocolRun {
    /// Which protocol was modeled.
    pub protocol: &'static str,
    /// Threads in the model.
    pub threads: usize,
    /// Exploration statistics, or the witnessed violation.
    pub result: Result<Explored, InterleaveError>,
}

/// Runs the full tier-3 concurrency audit: all three protocols at 2 and
/// 3 threads (the epoch model over two epochs, so job invalidation and
/// re-publish are both exercised; the lane-claim model over overlapping,
/// partially overlapping, and overflow-path masks). Returns the per-run
/// outcomes plus `AVC-C001` findings for any run that uncovered a
/// violation.
pub fn audit_concurrency() -> (Vec<ProtocolRun>, Vec<Finding>) {
    let runs = vec![
        ProtocolRun {
            protocol: "claim/2-writers",
            threads: 2,
            result: check_claim_protocol(2, 0),
        },
        ProtocolRun {
            protocol: "claim/3-writers",
            threads: 3,
            result: check_claim_protocol(3, 0),
        },
        ProtocolRun {
            protocol: "claim/2-writers+overflow",
            threads: 3,
            result: check_claim_protocol(2, 1),
        },
        ProtocolRun {
            protocol: "lane-claim/2-overlapping",
            threads: 2,
            result: check_lane_claim_protocol(&[0b11, 0b11], 0),
        },
        ProtocolRun {
            protocol: "lane-claim/partial-overlap",
            threads: 3,
            result: check_lane_claim_protocol(&[0b01, 0b11, 0b10], 0),
        },
        ProtocolRun {
            protocol: "lane-claim/2-writers+overflow",
            threads: 3,
            result: check_lane_claim_protocol(&[0b11, 0b01], 1),
        },
        ProtocolRun {
            protocol: "epoch/1-worker-2-epochs",
            threads: 2,
            result: check_epoch_protocol(1, 2),
        },
        ProtocolRun {
            protocol: "epoch/2-workers-2-epochs",
            threads: 3,
            result: check_epoch_protocol(2, 2),
        },
    ];
    let findings = runs
        .iter()
        .filter_map(|run| {
            run.result
                .as_ref()
                .err()
                .map(|err| Finding::new("AVC-C001", run.protocol, format!("{err}")))
        })
        .collect();
    (runs, findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_protocol_single_winner_holds_exhaustively() {
        for writers in 1..=MAX_MODEL_THREADS {
            let explored = check_claim_protocol(writers, 0).unwrap();
            assert!(explored.schedules >= 1);
        }
        // 3 writers explore strictly more interleavings than 2.
        let two = check_claim_protocol(2, 0).unwrap();
        let three = check_claim_protocol(3, 0).unwrap();
        assert!(three.schedules > two.schedules);
    }

    #[test]
    fn overflow_writers_never_touch_the_cell() {
        let explored = check_claim_protocol(2, 1).unwrap();
        assert!(explored.schedules >= 1);
    }

    #[test]
    fn lane_claim_single_winner_holds_per_lane() {
        // Fully overlapping, partially overlapping, and disjoint masks
        // all uphold the per-lane single-winner invariant.
        for masks in [
            &[0b11u64, 0b11][..],
            &[0b01, 0b11, 0b10],
            &[0b01, 0b10],
            &[0b11, 0b01, 0b10],
        ] {
            let explored = check_lane_claim_protocol(masks, 0).unwrap();
            assert!(explored.schedules >= 1, "masks {masks:?}");
        }
    }

    #[test]
    fn lane_claim_overflow_writers_never_touch_lanes() {
        let explored = check_lane_claim_protocol(&[0b11, 0b01], 1).unwrap();
        assert!(explored.schedules >= 1);
    }

    /// A lane claim performed as a load + store of the whole claim word
    /// instead of one `fetch_or`: the window between observing the bits
    /// clear and publishing the mask admits two winners of one lane.
    #[derive(Clone)]
    struct TornLaneClaimWriter {
        id: usize,
        mask: u64,
        seen: u64,
        pc: u8,
    }

    impl ThreadModel<LaneClaimState> for TornLaneClaimWriter {
        fn step(&mut self, shared: &mut LaneClaimState) -> StepResult {
            match self.pc {
                0 => {
                    self.seen = shared.claimed;
                    self.pc = 1;
                    StepResult::Ran
                }
                1 => {
                    shared.claimed |= self.mask;
                    let won = self.mask & !self.seen;
                    if won == 0 {
                        return StepResult::Finished;
                    }
                    for lane in 0..MODEL_LANES {
                        if won & (1 << lane) != 0 {
                            shared.winners[lane] += 1;
                            shared.writers_in_section[lane] += 1;
                            shared.lane_value[lane] = Some(self.id);
                            shared.writes[lane] += 1;
                            shared.writers_in_section[lane] -= 1;
                        }
                    }
                    StepResult::Finished
                }
                _ => StepResult::Finished,
            }
        }
    }

    #[test]
    fn torn_lane_claim_is_caught() {
        let threads = vec![
            TornLaneClaimWriter {
                id: 0,
                mask: 0b11,
                seen: 0,
                pc: 0,
            },
            TornLaneClaimWriter {
                id: 1,
                mask: 0b11,
                seen: 0,
                pc: 0,
            },
        ];
        let shared = LaneClaimState {
            claimed: 0,
            writers_in_section: [0; MODEL_LANES],
            lane_value: [None; MODEL_LANES],
            writes: [0; MODEL_LANES],
            winners: [0; MODEL_LANES],
        };
        let err = explore(&shared, &threads, &lane_claim_invariant, &|_| Ok(())).unwrap_err();
        assert!(
            matches!(err, InterleaveError::InvariantViolated { ref message, .. }
                if message.contains("won the claim for lane")),
            "expected a per-lane single-winner violation, got {err}"
        );
    }

    #[test]
    fn epoch_protocol_holds_across_republish() {
        let explored = check_epoch_protocol(2, 2).unwrap();
        // Two workers × coordinator over two epochs is a real state
        // space, not a degenerate one.
        assert!(explored.schedules > 10);
    }

    /// A claim bitmap updated with a load + store instead of `fetch_or`:
    /// the checker must find the two-winner interleaving.
    #[derive(Clone)]
    struct TornClaimWriter {
        id: usize,
        pc: u8,
        saw_clear: bool,
    }

    impl ThreadModel<ClaimState> for TornClaimWriter {
        fn step(&mut self, shared: &mut ClaimState) -> StepResult {
            match self.pc {
                0 => {
                    self.saw_clear = !shared.claimed;
                    self.pc = 1;
                    StepResult::Ran
                }
                1 => {
                    shared.claimed = true;
                    if !self.saw_clear {
                        return StepResult::Finished;
                    }
                    shared.winners += 1;
                    self.pc = 2;
                    StepResult::Ran
                }
                2 => {
                    shared.writers_in_section += 1;
                    self.pc = 3;
                    StepResult::Ran
                }
                3 => {
                    shared.cell_value = Some(self.id);
                    shared.writes += 1;
                    self.pc = 4;
                    StepResult::Ran
                }
                _ => {
                    shared.writers_in_section -= 1;
                    StepResult::Finished
                }
            }
        }
    }

    #[test]
    fn torn_claim_update_is_caught() {
        let threads = vec![
            TornClaimWriter {
                id: 0,
                pc: 0,
                saw_clear: false,
            },
            TornClaimWriter {
                id: 1,
                pc: 0,
                saw_clear: false,
            },
        ];
        let shared = ClaimState {
            claimed: false,
            writers_in_section: 0,
            cell_value: None,
            writes: 0,
            winners: 0,
        };
        let err = explore(&shared, &threads, &claim_invariant, &|_| Ok(())).unwrap_err();
        assert!(
            matches!(err, InterleaveError::InvariantViolated { ref message, .. }
                if message.contains("won the claim") || message.contains("write section")),
            "expected a single-winner violation, got {err}"
        );
    }

    #[test]
    fn barrier_free_coordinator_is_caught() {
        let err = check_epoch(2, 2, false).unwrap_err();
        assert!(
            matches!(err, InterleaveError::InvariantViolated { ref message, .. }
                if message.contains("invalidated job") || message.contains("read job for epoch")),
            "expected a use-after-invalidate witness, got {err}"
        );
    }

    #[test]
    fn audit_is_clean() {
        let (runs, findings) = audit_concurrency();
        assert_eq!(runs.len(), 8);
        assert!(
            findings.is_empty(),
            "concurrency audit found violations: {findings:?}"
        );
        for run in &runs {
            assert!(run.result.is_ok(), "{} failed", run.protocol);
        }
    }
}
