//! Tier-1 lint for piecewise operating-point schedules (AVC-N010).
//!
//! The scenario engine drives each slot with a *schedule* of
//! `(t_start, voltage)` segments (DESIGN.md §15). A malformed schedule —
//! empty, not anchored at `t = 0`, non-finite, or with non-increasing
//! segment starts — has no sound simulation semantics: segment lookup is
//! a `partition_point` over the boundary list, which requires a strictly
//! sorted, finite timeline covering the launch instant. This lint is the
//! shared gate: `avfs-core` refuses un-lowerable schedules before a
//! single kernel evaluation (and routes repairable findings through
//! `SimOptions::strict_validation`), and the standalone checker reports
//! the same rule for offline schedule corpora.
//!
//! A second, compile-time lint ([`lint_schedule_voltages`], `AVC-D006`)
//! checks segment supplies against the *characterized* voltage range:
//! the delay model's polynomials extrapolate badly outside it, so the
//! runtime clamps — this lint makes the clamp visible instead of silent.

use crate::Finding;

/// Lints one schedule given as `(t_start_ps, voltage)` pairs in declared
/// order. Every finding is `AVC-N010` (Deny). An empty result means the
/// schedule is well-formed: non-empty, first segment at `t = 0`, strictly
/// increasing finite start times, and finite positive voltages.
pub fn lint_schedule(location: &str, segments: &[(f64, f64)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    if segments.is_empty() {
        findings.push(Finding::new(
            "AVC-N010",
            location,
            "schedule has no segments",
        ));
        return findings;
    }
    if segments[0].0 != 0.0 {
        findings.push(Finding::new(
            "AVC-N010",
            location,
            format!(
                "first segment must start at t = 0 ps (starts at {} ps)",
                segments[0].0
            ),
        ));
    }
    for (i, &(t_start, voltage)) in segments.iter().enumerate() {
        if !t_start.is_finite() {
            findings.push(Finding::new(
                "AVC-N010",
                location,
                format!("segment {i} has non-finite start time {t_start}"),
            ));
        }
        if !voltage.is_finite() || voltage <= 0.0 {
            findings.push(Finding::new(
                "AVC-N010",
                location,
                format!("segment {i} requests invalid supply voltage {voltage} V"),
            ));
        }
        if i > 0 {
            let prev = segments[i - 1].0;
            // `<=` misses NaN starts, but those already raised the
            // non-finite finding above.
            if t_start <= prev {
                findings.push(Finding::new(
                    "AVC-N010",
                    location,
                    format!(
                        "segment {i} starts at {t_start} ps, not after segment {} ({prev} ps)",
                        i - 1
                    ),
                ));
            }
        }
    }
    findings
}

/// Lints one schedule's segment voltages against the characterized
/// voltage range `[v_min, v_max]` (from
/// `ParameterSpace::voltage_range`). Every finding is `AVC-D006` (Warn):
/// the segment would simulate, but only after the runtime silently
/// clamps its supply onto the characterized boundary — the delay it
/// yields is the boundary voltage's, not the requested one's.
pub fn lint_schedule_voltages(
    location: &str,
    segments: &[(f64, f64)],
    v_min: f64,
    v_max: f64,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, &(_, voltage)) in segments.iter().enumerate() {
        // Non-finite/non-positive voltages are AVC-N010's (Deny)
        // territory; this lint covers finite supplies that merely fall
        // off the characterized grid.
        if voltage.is_finite() && voltage > 0.0 && !(v_min..=v_max).contains(&voltage) {
            findings.push(Finding::new(
                "AVC-D006",
                format!("{location} segment {i}"),
                format!(
                    "segment supply {voltage} V lies outside the characterized \
                     [{v_min}, {v_max}] V range; the runtime would clamp it"
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    #[test]
    fn well_formed_schedules_pass() {
        assert!(lint_schedule("s", &[(0.0, 0.8)]).is_empty());
        assert!(lint_schedule("s", &[(0.0, 0.8), (50.0, 0.7), (120.0, 0.85)]).is_empty());
    }

    #[test]
    fn empty_schedule_denied() {
        let f = lint_schedule("scenario 0", &[]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "AVC-N010");
        assert_eq!(f[0].severity, Severity::Deny);
        assert_eq!(f[0].location, "scenario 0");
    }

    #[test]
    fn unanchored_start_denied() {
        let f = lint_schedule("s", &[(5.0, 0.8)]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("t = 0"), "{}", f[0].message);
    }

    #[test]
    fn unsorted_and_duplicate_starts_denied() {
        assert_eq!(
            lint_schedule("s", &[(0.0, 0.8), (50.0, 0.7), (40.0, 0.9)]).len(),
            1
        );
        // Equal start times are also non-increasing.
        assert_eq!(
            lint_schedule("s", &[(0.0, 0.8), (50.0, 0.7), (50.0, 0.9)]).len(),
            1
        );
    }

    #[test]
    fn out_of_range_voltages_warned_in_range_passes() {
        assert!(lint_schedule_voltages("s", &[(0.0, 0.8), (50.0, 0.55)], 0.55, 1.1).is_empty());
        let f = lint_schedule_voltages(
            "scenario 2",
            &[(0.0, 0.4), (50.0, 0.8), (90.0, 1.2)],
            0.55,
            1.1,
        );
        assert_eq!(f.len(), 2);
        for finding in &f {
            assert_eq!(finding.rule, "AVC-D006");
            assert_eq!(finding.severity, Severity::Warn);
        }
        assert_eq!(f[0].location, "scenario 2 segment 0");
        assert_eq!(f[1].location, "scenario 2 segment 2");
        // Invalid voltages are AVC-N010's problem, not AVC-D006's.
        assert!(lint_schedule_voltages("s", &[(0.0, f64::NAN), (1.0, -2.0)], 0.55, 1.1).is_empty());
    }

    #[test]
    fn non_finite_fields_denied() {
        assert!(!lint_schedule("s", &[(0.0, 0.8), (f64::NAN, 0.7)]).is_empty());
        assert!(!lint_schedule("s", &[(0.0, f64::INFINITY)]).is_empty());
        assert!(!lint_schedule("s", &[(0.0, 0.8), (10.0, -0.1)]).is_empty());
        assert!(!lint_schedule("s", &[(0.0, 0.0)]).is_empty());
    }
}
