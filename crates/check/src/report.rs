//! The schema-versioned check report (`avfs-check/1`).
//!
//! Every checker invocation aggregates its findings into a [`Report`]:
//! one [`Subject`] per analyzed artifact (a netlist, a delay model, the
//! concurrency protocols, the workspace source tree) with the subject's
//! findings, plus a derived severity summary. The JSON round-trip is
//! built on [`avfs_obs::Json`] like the perf report's
//! `avfs-perf-report/1`; [`Report::from_json`] doubles as the schema
//! validator `checker --smoke` and CI gate on.

use crate::{rule_spec, Finding, Severity};
use avfs_obs::{Json, JsonError};

/// Schema identifier embedded in every report.
pub const CHECK_SCHEMA: &str = "avfs-check/1";

/// Schema identifier of the optional STA cross-check section — versioned
/// independently of the enclosing report so the section can evolve
/// without a report-wide schema bump.
pub const STA_SCHEMA: &str = "avfs-check-sta/1";

/// One STA ↔ simulator comparison row: a circuit at one operating
/// voltage.
#[derive(Debug, Clone, PartialEq)]
pub struct StaRow {
    /// Circuit name.
    pub circuit: String,
    /// Supply voltage, V.
    pub voltage: f64,
    /// STA latest-arrival upper bound, ps.
    pub sta_latest_ps: f64,
    /// Worst simulated latest-transition arrival across the compared
    /// slots, ps (`None` when no slot transitioned).
    pub sim_latest_ps: Option<f64>,
    /// `sta_latest_ps − sim_latest_ps` (`None` when no slot
    /// transitioned). Non-negative in a healthy flow — a negative margin
    /// is exactly an `AVC-T001` finding.
    pub margin_ps: Option<f64>,
}

/// The STA cross-check summary merged into `CHECK_report.json` under the
/// `sta` key (schema [`STA_SCHEMA`]). Findings the cross-check raises
/// flow through ordinary [`Subject`]s; this section carries the
/// quantitative agreement table CI and EXPERIMENTS.md read.
#[derive(Debug, Clone, PartialEq)]
pub struct StaSection {
    /// The comparison tolerance the cross-check ran with, ps.
    pub epsilon_ps: f64,
    /// One row per `(circuit, voltage)` comparison, in run order.
    pub rows: Vec<StaRow>,
}

impl StaSection {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(STA_SCHEMA.into())),
            ("epsilon_ps".into(), Json::Num(self.epsilon_ps)),
            (
                "rows".into(),
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            let opt = |v: Option<f64>| v.map_or(Json::Null, Json::Num);
                            Json::Obj(vec![
                                ("circuit".into(), Json::Str(r.circuit.clone())),
                                ("voltage".into(), Json::Num(r.voltage)),
                                ("sta_latest_ps".into(), Json::Num(r.sta_latest_ps)),
                                ("sim_latest_ps".into(), opt(r.sim_latest_ps)),
                                ("margin_ps".into(), opt(r.margin_ps)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(value: &Json) -> Result<StaSection, JsonError> {
        let fail = |message: String| JsonError { offset: 0, message };
        let schema = value
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("sta section missing schema tag".into()))?;
        if schema != STA_SCHEMA {
            return Err(fail(format!("unsupported sta section schema '{schema}'")));
        }
        let num = |obj: &Json, key: &str| {
            obj.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| fail(format!("sta section: missing/invalid field '{key}'")))
        };
        let mut rows = Vec::new();
        for r in value
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| fail("sta section missing rows array".into()))?
        {
            let opt = |key: &str| match r.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => v
                    .as_f64()
                    .map(Some)
                    .ok_or_else(|| fail(format!("sta section: invalid field '{key}'"))),
            };
            rows.push(StaRow {
                circuit: r
                    .get("circuit")
                    .and_then(Json::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| fail("sta section: missing/invalid field 'circuit'".into()))?,
                voltage: num(r, "voltage")?,
                sta_latest_ps: num(r, "sta_latest_ps")?,
                sim_latest_ps: opt("sim_latest_ps")?,
                margin_ps: opt("margin_ps")?,
            });
        }
        Ok(StaSection {
            epsilon_ps: num(value, "epsilon_ps")?,
            rows,
        })
    }
}

/// One analyzed artifact and its findings.
#[derive(Debug, Clone, PartialEq)]
pub struct Subject {
    /// What was analyzed (a circuit name, `delay-model`, `workspace`).
    pub name: String,
    /// Which analysis produced the findings (`netlist`, `delay-model`,
    /// `concurrency`, `safety`).
    pub kind: String,
    /// The subject's findings (already capped per rule by the linters).
    pub findings: Vec<Finding>,
}

impl Subject {
    /// Creates a subject.
    pub fn new(
        name: impl Into<String>,
        kind: impl Into<String>,
        findings: Vec<Finding>,
    ) -> Subject {
        Subject {
            name: name.into(),
            kind: kind.into(),
            findings,
        }
    }
}

/// A full check report.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Version of the checker that produced the report
    /// (`CARGO_PKG_VERSION` of `avfs-check`).
    pub tool_version: String,
    /// One entry per analyzed artifact, in analysis order.
    pub subjects: Vec<Subject>,
    /// Complete interleavings the tier-3 audit explored (0 when the
    /// audit did not run).
    pub schedules_explored: u64,
    /// The STA cross-check summary (`None` when the cross-check did not
    /// run; reports without the section parse unchanged).
    pub sta: Option<StaSection>,
}

impl Report {
    /// Creates an empty report stamped with this crate's version.
    pub fn new() -> Report {
        Report {
            tool_version: env!("CARGO_PKG_VERSION").to_owned(),
            subjects: Vec::new(),
            schedules_explored: 0,
            sta: None,
        }
    }

    /// Appends a subject.
    pub fn push(&mut self, subject: Subject) {
        self.subjects.push(subject);
    }

    /// Number of findings at exactly `severity` across all subjects.
    pub fn count(&self, severity: Severity) -> usize {
        self.subjects
            .iter()
            .flat_map(|s| &s.findings)
            .filter(|f| f.severity == severity)
            .count()
    }

    /// The most severe finding present, `None` for a clean report.
    pub fn max_severity(&self) -> Option<Severity> {
        self.subjects
            .iter()
            .flat_map(|s| &s.findings)
            .map(|f| f.severity)
            .max()
    }

    /// Whether CI may pass: no deny-severity finding anywhere.
    pub fn passes_ci(&self) -> bool {
        self.max_severity() < Some(Severity::Deny)
    }

    /// Serializes to the schema-versioned JSON document. The optional
    /// `sta` section is emitted only when present, so cross-check-free
    /// reports are byte-identical to pre-section ones.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema".into(), Json::Str(CHECK_SCHEMA.into())),
            ("tool_version".into(), Json::Str(self.tool_version.clone())),
            (
                "summary".into(),
                Json::Obj(vec![
                    ("deny".into(), Json::Num(self.count(Severity::Deny) as f64)),
                    ("warn".into(), Json::Num(self.count(Severity::Warn) as f64)),
                    ("info".into(), Json::Num(self.count(Severity::Info) as f64)),
                    (
                        "schedules_explored".into(),
                        Json::Num(self.schedules_explored as f64),
                    ),
                ]),
            ),
            (
                "subjects".into(),
                Json::Arr(
                    self.subjects
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(s.name.clone())),
                                ("kind".into(), Json::Str(s.kind.clone())),
                                (
                                    "findings".into(),
                                    Json::Arr(
                                        s.findings
                                            .iter()
                                            .map(|f| {
                                                Json::Obj(vec![
                                                    ("rule".into(), Json::Str(f.rule.to_owned())),
                                                    (
                                                        "severity".into(),
                                                        Json::Str(f.severity.name().to_owned()),
                                                    ),
                                                    (
                                                        "location".into(),
                                                        Json::Str(f.location.clone()),
                                                    ),
                                                    (
                                                        "message".into(),
                                                        Json::Str(f.message.clone()),
                                                    ),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(sta) = &self.sta {
            fields.push(("sta".into(), sta.to_json()));
        }
        Json::Obj(fields)
    }

    /// Deserializes (and thereby validates) a report document: schema
    /// tag, field types, rule registration, severity consistency with
    /// the registry, and summary-count consistency are all enforced.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first problem found.
    pub fn from_json(value: &Json) -> Result<Report, JsonError> {
        let fail = |message: String| JsonError { offset: 0, message };
        let req_str = |obj: &Json, key: &str| {
            obj.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| fail(format!("missing/invalid field '{key}'")))
        };
        let schema = req_str(value, "schema")?;
        if schema != CHECK_SCHEMA {
            return Err(fail(format!("unsupported schema '{schema}'")));
        }
        let mut subjects = Vec::new();
        for s in value
            .get("subjects")
            .and_then(Json::as_arr)
            .ok_or_else(|| fail("missing subjects array".into()))?
        {
            let mut findings = Vec::new();
            for f in s
                .get("findings")
                .and_then(Json::as_arr)
                .ok_or_else(|| fail("missing findings array".into()))?
            {
                let rule = req_str(f, "rule")?;
                let spec =
                    rule_spec(&rule).ok_or_else(|| fail(format!("unregistered rule '{rule}'")))?;
                let severity = req_str(f, "severity")?;
                if Severity::from_name(&severity) != Some(spec.severity) {
                    return Err(fail(format!(
                        "severity '{severity}' disagrees with registry for '{rule}'"
                    )));
                }
                findings.push(Finding::new(
                    spec.id,
                    req_str(f, "location")?,
                    req_str(f, "message")?,
                ));
            }
            subjects.push(Subject {
                name: req_str(s, "name")?,
                kind: req_str(s, "kind")?,
                findings,
            });
        }
        let summary = value
            .get("summary")
            .ok_or_else(|| fail("missing summary block".into()))?;
        let report = Report {
            tool_version: req_str(value, "tool_version")?,
            subjects,
            schedules_explored: summary
                .get("schedules_explored")
                .and_then(Json::as_u64)
                .ok_or_else(|| fail("missing/invalid field 'schedules_explored'".into()))?,
            sta: value.get("sta").map(StaSection::from_json).transpose()?,
        };
        for severity in [Severity::Deny, Severity::Warn, Severity::Info] {
            let claimed = summary
                .get(severity.name())
                .and_then(Json::as_u64)
                .ok_or_else(|| fail(format!("missing/invalid summary count '{severity}'")))?;
            let actual = report.count(severity) as u64;
            if claimed != actual {
                return Err(fail(format!(
                    "summary claims {claimed} {severity} finding(s), document has {actual}"
                )));
            }
        }
        Ok(report)
    }

    /// Parses and validates a serialized report.
    ///
    /// # Errors
    ///
    /// Returns the parse or schema error rendered as a string.
    pub fn validate(text: &str) -> Result<Report, String> {
        let value = Json::parse(text).map_err(|e| e.to_string())?;
        Report::from_json(&value).map_err(|e| e.message)
    }
}

impl Default for Report {
    fn default() -> Report {
        Report::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut report = Report::new();
        report.push(Subject::new(
            "c17",
            "netlist",
            vec![
                Finding::new("AVC-N005", "g3", "dangling"),
                Finding::new("AVC-N009", "g4", "duplicate fan-in"),
            ],
        ));
        report.push(Subject::new("delay-model", "delay-model", Vec::new()));
        report.push(Subject::new(
            "workspace",
            "safety",
            vec![Finding::new("AVC-S001", "src/x.rs:10", "no SAFETY comment")],
        ));
        report.schedules_explored = 1234;
        report
    }

    #[test]
    fn round_trip_is_identity() {
        let report = sample();
        let text = report.to_json().to_string_pretty();
        assert!(!text.contains("\"sta\""), "no sta section when None");
        let back = Report::validate(&text).expect("valid document");
        assert_eq!(back, report);
    }

    #[test]
    fn sta_section_round_trips() {
        let mut report = sample();
        report.sta = Some(StaSection {
            epsilon_ps: 1e-6,
            rows: vec![
                StaRow {
                    circuit: "c17".into(),
                    voltage: 0.55,
                    sta_latest_ps: 42.5,
                    sim_latest_ps: Some(40.0),
                    margin_ps: Some(2.5),
                },
                StaRow {
                    circuit: "rca8".into(),
                    voltage: 1.1,
                    sta_latest_ps: 10.0,
                    sim_latest_ps: None,
                    margin_ps: None,
                },
            ],
        });
        let text = report.to_json().to_string_pretty();
        assert!(text.contains(STA_SCHEMA));
        let back = Report::validate(&text).expect("valid document");
        assert_eq!(back, report);
        // A corrupted section schema tag is rejected.
        let bad = text.replace(STA_SCHEMA, "avfs-check-sta/99");
        assert!(Report::validate(&bad)
            .unwrap_err()
            .contains("unsupported sta section schema"));
    }

    #[test]
    fn severity_aggregation() {
        let report = sample();
        assert_eq!(report.count(Severity::Deny), 1);
        assert_eq!(report.count(Severity::Warn), 1);
        assert_eq!(report.count(Severity::Info), 1);
        assert_eq!(report.max_severity(), Some(Severity::Deny));
        assert!(!report.passes_ci());
        let clean = Report::new();
        assert_eq!(clean.max_severity(), None);
        assert!(clean.passes_ci());
        let mut warn_only = Report::new();
        warn_only.push(Subject::new(
            "c17",
            "netlist",
            vec![Finding::new("AVC-N007", "a", "unused")],
        ));
        assert!(warn_only.passes_ci(), "warn findings do not fail CI");
    }

    #[test]
    fn validate_rejects_corrupt_documents() {
        assert!(Report::validate("not json").is_err());
        assert!(Report::validate("{}").is_err());
        let wrong = r#"{"schema": "avfs-check/99", "subjects": []}"#;
        assert!(Report::validate(wrong).unwrap_err().contains("unsupported"));
        // Unregistered rule.
        let text = sample()
            .to_json()
            .to_string_pretty()
            .replace("AVC-N005", "AVC-Z999");
        assert!(Report::validate(&text).unwrap_err().contains("AVC-Z999"));
        // Severity drifted from the registry.
        let text = sample()
            .to_json()
            .to_string_pretty()
            .replace(r#""severity": "info""#, r#""severity": "deny""#);
        assert!(Report::validate(&text).unwrap_err().contains("disagrees"));
    }

    #[test]
    fn summary_counts_are_checked() {
        let mut v = sample().to_json();
        if let Json::Obj(fields) = &mut v {
            if let Some((_, Json::Obj(summary))) = fields.iter_mut().find(|(k, _)| k == "summary") {
                for (k, val) in summary.iter_mut() {
                    if k == "deny" {
                        *val = Json::Num(7.0);
                    }
                }
            }
        }
        let err = Report::validate(&v.to_string_pretty()).unwrap_err();
        assert!(err.contains("summary claims 7"), "{err}");
    }
}
