//! Tier 1 — structural lints over [`avfs_netlist::Netlist`].
//!
//! The builder already rejects many malformed graphs at construction
//! time, but netlists also arrive through parsers, unchecked test hooks
//! and (eventually) external tools, so the linter re-proves every
//! structural property the engine's levelized schedule relies on and
//! additionally flags *legal-but-suspect* shapes (dead logic, floating
//! stimuli) that silently skew activity and timing statistics.

use crate::{cap_findings, Finding};
use avfs_netlist::{Levelization, Netlist, NetlistError, NodeId, NodeKind};

/// Runs every tier-1 rule over a netlist and returns the (per-rule
/// capped, deterministic) findings. A clean netlist returns an empty
/// vector.
pub fn lint_netlist(netlist: &Netlist) -> Vec<Finding> {
    let mut findings = Vec::new();
    lint_arity(netlist, &mut findings);
    lint_graph_consistency(netlist, &mut findings);
    // On a corrupt graph the remaining lints would chase the broken
    // cross-references (levelization in particular walks fan-out lists),
    // so stop at the structural deny — fixing it re-enables the rest.
    if findings.iter().any(|f| f.rule == "AVC-N003") {
        return cap_findings(findings);
    }
    lint_levelization(netlist, &mut findings);
    lint_connectivity(netlist, &mut findings);
    lint_duplicate_fanin(netlist, &mut findings);
    cap_findings(findings)
}

/// AVC-N002: a gate's fan-in count must match its library cell's arity.
/// `NetlistBuilder::add_gate` enforces this, but rewiring hooks and
/// future binary loaders do not.
fn lint_arity(netlist: &Netlist, findings: &mut Vec<Finding>) {
    for (id, node) in netlist.iter() {
        if let Some(cell) = netlist.cell_of(id) {
            if cell.num_inputs() != node.fanin().len() {
                findings.push(Finding::new(
                    "AVC-N002",
                    node.name(),
                    format!(
                        "gate `{}` connects {} input(s) but cell `{}` has {} pin(s)",
                        node.name(),
                        node.fanin().len(),
                        cell.name(),
                        cell.num_inputs()
                    ),
                ));
            }
        }
    }
}

/// AVC-N003: every fan-in edge must have a matching fan-out edge and
/// vice versa — the in-memory expression of "each net has exactly one
/// driver". A mismatch means the graph was corrupted (or a net
/// multi-driven) by an unchecked construction path.
fn lint_graph_consistency(netlist: &Netlist, findings: &mut Vec<Finding>) {
    for (id, node) in netlist.iter() {
        for (pin, &f) in node.fanin().iter().enumerate() {
            if f.index() >= netlist.num_nodes() {
                findings.push(Finding::new(
                    "AVC-N003",
                    node.name(),
                    format!(
                        "pin {pin} of `{}` references out-of-range node index {}",
                        node.name(),
                        f.index()
                    ),
                ));
                continue;
            }
            if !netlist.node(f).fanout().contains(&id) {
                findings.push(Finding::new(
                    "AVC-N003",
                    node.name(),
                    format!(
                        "pin {pin} of `{}` reads `{}`, but `{}` has no matching fan-out edge",
                        node.name(),
                        netlist.node(f).name(),
                        netlist.node(f).name()
                    ),
                ));
            }
        }
        for &s in node.fanout() {
            if s.index() >= netlist.num_nodes() || !netlist.node(s).fanin().contains(&id) {
                findings.push(Finding::new(
                    "AVC-N003",
                    node.name(),
                    format!(
                        "`{}` lists a fan-out sink without a matching fan-in edge",
                        node.name()
                    ),
                ));
            }
        }
        if matches!(node.kind(), NodeKind::Input) && !node.fanin().is_empty() {
            findings.push(Finding::new(
                "AVC-N003",
                node.name(),
                format!(
                    "primary input `{}` has fan-in (multi-driven net)",
                    node.name()
                ),
            ));
        }
    }
}

/// AVC-N001 / AVC-N004: the netlist must levelize (reusing the existing
/// combinational-loop witness) and the computed levels must satisfy the
/// level invariant the parallel schedule rests on.
fn lint_levelization(netlist: &Netlist, findings: &mut Vec<Finding>) {
    match Levelization::of(netlist) {
        Err(NetlistError::CombinationalLoop { nodes }) => {
            findings.push(Finding::new(
                "AVC-N001",
                nodes.first().cloned().unwrap_or_default(),
                format!("combinational feedback loop: {}", nodes.join(" -> ")),
            ));
        }
        Err(other) => {
            findings.push(Finding::new(
                "AVC-N001",
                "",
                format!("levelization failed: {other}"),
            ));
        }
        Ok(levels) => findings.extend(lint_levels(netlist, &levels)),
    }
}

/// AVC-N004: checks a *given* levelization against a netlist — every
/// node's level must strictly exceed all of its fan-ins' levels, the
/// precondition for the engine's one-epoch-per-level arena writes.
///
/// [`lint_netlist`] applies this to a freshly computed levelization
/// (where it holds by construction); the engine applies it to its
/// *cached* levelization, so a stale or mismatched cache is caught
/// before any waveform is written.
pub fn lint_levels(netlist: &Netlist, levels: &Levelization) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (id, node) in netlist.iter() {
        for &f in node.fanin() {
            if levels.level_of(f) >= levels.level_of(id) {
                findings.push(Finding::new(
                    "AVC-N004",
                    node.name(),
                    format!(
                        "`{}` (level {}) does not dominate fan-in `{}` (level {})",
                        node.name(),
                        levels.level_of(id),
                        netlist.node(f).name(),
                        levels.level_of(f)
                    ),
                ));
            }
        }
    }
    cap_findings(findings)
}

/// AVC-N005..N008: connectivity lints — dangling nets, dead cones,
/// floating inputs, undriven gates. One forward and one backward
/// reachability sweep; all legal, all suspicious.
fn lint_connectivity(netlist: &Netlist, findings: &mut Vec<Finding>) {
    let n = netlist.num_nodes();
    // Forward reachability from primary inputs.
    let mut from_input = vec![false; n];
    let mut stack: Vec<NodeId> = netlist.inputs().to_vec();
    for &i in netlist.inputs() {
        from_input[i.index()] = true;
    }
    while let Some(id) = stack.pop() {
        for &s in netlist.node(id).fanout() {
            if !from_input[s.index()] {
                from_input[s.index()] = true;
                stack.push(s);
            }
        }
    }
    // Backward reachability from primary outputs.
    let mut to_output = vec![false; n];
    let mut stack: Vec<NodeId> = netlist.outputs().to_vec();
    for &o in netlist.outputs() {
        to_output[o.index()] = true;
    }
    while let Some(id) = stack.pop() {
        for &f in netlist.node(id).fanin() {
            if !to_output[f.index()] {
                to_output[f.index()] = true;
                stack.push(f);
            }
        }
    }
    for (id, node) in netlist.iter() {
        match node.kind() {
            NodeKind::Input => {
                if node.fanout().is_empty() {
                    findings.push(Finding::new(
                        "AVC-N007",
                        node.name(),
                        format!("primary input `{}` drives nothing", node.name()),
                    ));
                }
            }
            NodeKind::Gate(_) => {
                if node.fanout().is_empty() {
                    findings.push(Finding::new(
                        "AVC-N005",
                        node.name(),
                        format!("output net of gate `{}` has no fan-out", node.name()),
                    ));
                } else if !to_output[id.index()] {
                    // Fanout-free gates are already flagged above; this
                    // catches cones that feed only other dead logic.
                    findings.push(Finding::new(
                        "AVC-N006",
                        node.name(),
                        format!("gate `{}` reaches no primary output", node.name()),
                    ));
                }
                if !from_input[id.index()] {
                    findings.push(Finding::new(
                        "AVC-N008",
                        node.name(),
                        format!(
                            "gate `{}` is unreachable from every primary input",
                            node.name()
                        ),
                    ));
                }
            }
            NodeKind::Output => {}
        }
    }
}

/// AVC-N009: the same net on several pins of one gate is legal (tests
/// use it to express `NAND(a, a)`) but usually a netlist bug upstream.
fn lint_duplicate_fanin(netlist: &Netlist, findings: &mut Vec<Finding>) {
    for (_, node) in netlist.iter() {
        let fanin = node.fanin();
        let mut dup: Option<NodeId> = None;
        for (i, &f) in fanin.iter().enumerate() {
            if fanin[..i].contains(&f) {
                dup = Some(f);
                break;
            }
        }
        if let Some(f) = dup {
            findings.push(Finding::new(
                "AVC-N009",
                node.name(),
                format!(
                    "net `{}` drives more than one pin of `{}`",
                    netlist.node(f).name(),
                    node.name()
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;
    use avfs_netlist::{CellLibrary, NetlistBuilder};
    use std::sync::Arc;

    fn lib() -> Arc<CellLibrary> {
        CellLibrary::nangate15_like()
    }

    /// A clean two-gate circuit: the negative fixture for every rule.
    fn clean() -> Netlist {
        let lib = lib();
        let mut b = NetlistBuilder::new("clean", &lib);
        let a = b.add_input("a").unwrap();
        let c = b.add_input("b").unwrap();
        let g1 = b.add_gate("g1", "NAND2_X1", &[a, c]).unwrap();
        let g2 = b.add_gate("g2", "INV_X1", &[g1]).unwrap();
        b.add_output("y", g2).unwrap();
        b.finish().unwrap()
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn clean_netlist_has_no_findings() {
        assert_eq!(lint_netlist(&clean()), Vec::new());
    }

    #[test]
    fn combinational_loop_reuses_witness() {
        let lib = lib();
        let mut b = NetlistBuilder::new("looped", &lib);
        let a = b.add_input("a").unwrap();
        let g1 = b.add_gate("g1", "NAND2_X1", &[a, a]).unwrap();
        let g2 = b.add_gate("g2", "INV_X1", &[g1]).unwrap();
        b.add_output("y", g2).unwrap();
        b.rewire_unchecked(g1, 1, g2);
        let findings = lint_netlist(&b.finish_unchecked());
        let loops: Vec<&Finding> = findings.iter().filter(|f| f.rule == "AVC-N001").collect();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].severity, Severity::Deny);
        assert!(loops[0].message.contains("g1") && loops[0].message.contains("g2"));
    }

    #[test]
    fn dangling_gate_and_unobservable_cone_flagged() {
        let lib = lib();
        let mut b = NetlistBuilder::new("dead", &lib);
        let a = b.add_input("a").unwrap();
        let live = b.add_gate("live", "INV_X1", &[a]).unwrap();
        // A two-gate dead cone: `feeder` reaches only `sink`, which
        // drives nothing.
        let feeder = b.add_gate("feeder", "BUF_X1", &[a]).unwrap();
        let _sink = b.add_gate("sink", "INV_X1", &[feeder]).unwrap();
        b.add_output("y", live).unwrap();
        let findings = lint_netlist(&b.finish().unwrap());
        assert_eq!(rules_of(&findings), vec!["AVC-N005", "AVC-N006"]);
        assert_eq!(findings[0].location, "sink");
        assert_eq!(findings[1].location, "feeder");
    }

    #[test]
    fn unused_input_flagged() {
        let lib = lib();
        let mut b = NetlistBuilder::new("floating", &lib);
        let a = b.add_input("a").unwrap();
        let _unused = b.add_input("unused").unwrap();
        let g = b.add_gate("g", "INV_X1", &[a]).unwrap();
        b.add_output("y", g).unwrap();
        let findings = lint_netlist(&b.finish().unwrap());
        assert_eq!(rules_of(&findings), vec!["AVC-N007"]);
        assert_eq!(findings[0].location, "unused");
    }

    #[test]
    fn duplicate_fanin_is_info() {
        let lib = lib();
        let mut b = NetlistBuilder::new("dup", &lib);
        let a = b.add_input("a").unwrap();
        let g = b.add_gate("g", "NAND2_X1", &[a, a]).unwrap();
        b.add_output("y", g).unwrap();
        let findings = lint_netlist(&b.finish().unwrap());
        assert_eq!(rules_of(&findings), vec!["AVC-N009"]);
        assert_eq!(findings[0].severity, Severity::Info);
    }

    #[test]
    fn corrupted_cross_references_flagged() {
        // Clearing one node's fan-out list after assembly leaves its
        // sinks' fan-in edges without a matching counterpart — the
        // in-memory shape of a multi-driven / corrupted net.
        let mut netlist = clean();
        let g1 = netlist.find("g1").unwrap();
        netlist.clear_fanout_unchecked(g1);
        let findings = lint_netlist(&netlist);
        let integrity: Vec<&Finding> = findings.iter().filter(|f| f.rule == "AVC-N003").collect();
        assert!(!integrity.is_empty(), "expected AVC-N003 in {findings:?}");
        assert_eq!(integrity[0].severity, Severity::Deny);
        assert_eq!(integrity[0].location, "g2");
    }

    #[test]
    fn arity_mismatch_flagged() {
        let lib = lib();
        let mut b = NetlistBuilder::new("arity", &lib);
        let a = b.add_input("a").unwrap();
        let c = b.add_input("b").unwrap();
        let g = b.add_gate("g", "NAND2_X1", &[a, c]).unwrap();
        b.add_output("y", g).unwrap();
        b.pop_fanin_unchecked(g);
        let findings = lint_netlist(&b.finish_unchecked());
        let arity: Vec<&Finding> = findings.iter().filter(|f| f.rule == "AVC-N002").collect();
        assert_eq!(arity.len(), 1);
        assert_eq!(arity[0].severity, Severity::Deny);
        assert!(arity[0].message.contains("1 input(s)"));
    }

    #[test]
    fn stale_levelization_flagged() {
        // Levels computed for a chain a→g1→g2→y do not satisfy the
        // invariant on a same-size netlist wired a→{g1,g2}→y.
        let lib = lib();
        let mut chain = NetlistBuilder::new("chain", &lib);
        let a = chain.add_input("a").unwrap();
        let g1 = chain.add_gate("g1", "INV_X1", &[a]).unwrap();
        let g2 = chain.add_gate("g2", "INV_X1", &[g1]).unwrap();
        chain.add_output("y", g2).unwrap();
        let chain = chain.finish().unwrap();

        let mut flat = NetlistBuilder::new("flat", &lib);
        let a = flat.add_input("a").unwrap();
        let g1 = flat.add_gate("g1", "INV_X1", &[a]).unwrap();
        let g2 = flat.add_gate("g2", "INV_X1", &[a]).unwrap();
        flat.add_output("y", g2).unwrap();
        let _ = g1;
        let flat = flat.finish().unwrap();

        let chain_levels = Levelization::of(&chain).unwrap();
        let flat_levels = Levelization::of(&flat).unwrap();
        assert_eq!(lint_levels(&chain, &chain_levels), Vec::new());
        // `flat`'s g2 reads `a` directly; under `chain`'s levels that is
        // fine, but `chain`'s g2 (level 2) read against `flat`'s levels
        // (g2 at level 1, g1 at level 1) breaks the invariant.
        let findings = lint_levels(&chain, &flat_levels);
        assert!(
            findings.iter().any(|f| f.rule == "AVC-N004"),
            "expected AVC-N004 in {findings:?}"
        );
    }

    #[test]
    fn undriven_cone_behind_cycle_flagged() {
        // g1/g2 form a loop that feeds g3: none of them is reachable
        // from a primary input, and the loop itself is AVC-N001.
        let lib = lib();
        let mut b = NetlistBuilder::new("islanded", &lib);
        let a = b.add_input("a").unwrap();
        let live = b.add_gate("live", "INV_X1", &[a]).unwrap();
        let g1 = b.add_gate("g1", "NAND2_X1", &[a, a]).unwrap();
        let g2 = b.add_gate("g2", "INV_X1", &[g1]).unwrap();
        let g3 = b.add_gate("g3", "INV_X1", &[g2]).unwrap();
        b.add_output("y", live).unwrap();
        b.add_output("z", g3).unwrap();
        b.rewire_unchecked(g1, 0, g2);
        b.rewire_unchecked(g1, 1, g2);
        let findings = lint_netlist(&b.finish_unchecked());
        let rules = rules_of(&findings);
        assert!(rules.contains(&"AVC-N001"), "loop missing in {rules:?}");
        let undriven: Vec<&Finding> = findings.iter().filter(|f| f.rule == "AVC-N008").collect();
        let names: Vec<&str> = undriven.iter().map(|f| f.location.as_str()).collect();
        assert_eq!(names, vec!["g1", "g2", "g3"]);
    }

    #[test]
    fn findings_are_capped_per_rule() {
        let lib = lib();
        let mut b = NetlistBuilder::new("many", &lib);
        let a = b.add_input("a").unwrap();
        let g = b.add_gate("g", "INV_X1", &[a]).unwrap();
        for i in 0..20 {
            b.add_gate(format!("dead{i}"), "INV_X1", &[a]).unwrap();
        }
        b.add_output("y", g).unwrap();
        let findings = lint_netlist(&b.finish().unwrap());
        let dangling: Vec<&Finding> = findings.iter().filter(|f| f.rule == "AVC-N005").collect();
        assert_eq!(dangling.len(), crate::MAX_FINDINGS_PER_RULE + 1);
        assert!(dangling.last().unwrap().message.contains("12 further"));
    }
}
