//! Tier 3 — a bounded exhaustive-interleaving checker (mini-loom).
//!
//! The engine's hot path rests on two hand-rolled lock-free protocols:
//! the waveform arena's per-cell *claim-bit* writes and the worker
//! pool's *epoch-barrier* release. Their safety arguments live in
//! `SAFETY:` comments; this module turns those arguments into machine
//! checks by exhaustively exploring every thread interleaving of a small
//! *model* of each protocol (2–3 threads, a handful of atomic steps — the
//! sizes at which lock-free bugs actually manifest).
//!
//! # Model
//!
//! A protocol is modeled as cloneable shared state `S` plus one
//! [`ThreadModel`] per thread. Each [`ThreadModel::step`] call performs
//! **one atomic action** (one atomic RMW, or one critical section of a
//! mutex-protected region — anything that is a single indivisible step
//! in the real implementation) and reports whether the thread ran, is
//! blocked (a condvar-style wait whose predicate is false), or finished.
//!
//! [`explore`] then runs a depth-first search over all schedules: at
//! every state it forks one branch per runnable thread. Because states
//! are cloned at each fork, the exploration is exhaustive — every
//! interleaving of the threads' atomic steps is visited exactly once. An
//! `invariant` callback is evaluated after **every** step, and a
//! `final_check` at every completed schedule; the first violation
//! aborts the search with the failing schedule attached as a witness.
//!
//! This is deliberately not a memory-model checker: steps are
//! sequentially consistent. The protocols under test synchronize every
//! cross-thread access through `AcqRel` RMWs or a mutex, so SC
//! exploration of the *protocol logic* (who wins, who waits, what is
//! visible when) is the part that needs proving; per-location release/
//! acquire pairing is argued in the `SAFETY:` comments the
//! [`safety`](crate::safety) lint enforces.

use std::fmt;

/// What one atomic step of a thread did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// The thread performed its step; it remains schedulable.
    Ran,
    /// The thread's wait predicate is false; the scheduler must pick
    /// another thread (the step must not have mutated shared state).
    Blocked,
    /// The thread has no more steps.
    Finished,
}

/// One modeled thread: a cloneable program counter plus registers.
pub trait ThreadModel<S>: Clone {
    /// Executes the thread's next atomic action against the shared
    /// state. A `Blocked` return must leave `shared` (and `self`)
    /// unchanged, mirroring a condvar wait re-checking its predicate.
    fn step(&mut self, shared: &mut S) -> StepResult;
}

/// Exploration statistics of a passed check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Explored {
    /// Complete schedules (interleavings) visited.
    pub schedules: u64,
    /// Total atomic steps executed across all branches.
    pub steps: u64,
    /// Length of the longest schedule.
    pub max_depth: usize,
}

/// Why an exploration failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterleaveError {
    /// The invariant failed after a step; `schedule` is the thread-index
    /// trace that reaches the violation.
    InvariantViolated {
        /// The violation message from the invariant callback.
        message: String,
        /// Thread indices in execution order reproducing the violation.
        schedule: Vec<usize>,
    },
    /// A completed schedule failed the final check.
    FinalCheckFailed {
        /// The violation message from the final-check callback.
        message: String,
        /// Thread indices in execution order reproducing the violation.
        schedule: Vec<usize>,
    },
    /// Unfinished threads exist but all are blocked.
    Deadlock {
        /// Thread indices in execution order reaching the deadlock.
        schedule: Vec<usize>,
        /// Indices of the threads still blocked.
        blocked: Vec<usize>,
    },
    /// The search exceeded `max_steps` — a livelock in the model (e.g. a
    /// spin loop modeled as `Ran`) or a model far too large to explore.
    BoundExceeded {
        /// The configured step bound.
        max_steps: u64,
    },
}

impl fmt::Display for InterleaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterleaveError::InvariantViolated { message, schedule } => {
                write!(
                    f,
                    "invariant violated after schedule {schedule:?}: {message}"
                )
            }
            InterleaveError::FinalCheckFailed { message, schedule } => {
                write!(f, "final check failed for schedule {schedule:?}: {message}")
            }
            InterleaveError::Deadlock { schedule, blocked } => {
                write!(
                    f,
                    "deadlock after schedule {schedule:?}: threads {blocked:?} blocked"
                )
            }
            InterleaveError::BoundExceeded { max_steps } => {
                write!(f, "exploration exceeded the {max_steps}-step bound")
            }
        }
    }
}

impl std::error::Error for InterleaveError {}

/// Hard bound on total steps across all branches — generous for the 2–3
/// thread protocol models (which need a few thousand) while turning a
/// buggy spin-modeled-as-`Ran` livelock into a clean error.
pub const DEFAULT_MAX_STEPS: u64 = 50_000_000;

/// Exhaustively explores every interleaving of `threads` over `shared`.
///
/// `invariant` runs after every step; `final_check` runs once per
/// completed schedule (all threads finished). Returns exploration
/// statistics, or the first violation with its schedule witness.
///
/// # Errors
///
/// See [`InterleaveError`].
pub fn explore<S: Clone, T: ThreadModel<S>>(
    shared: &S,
    threads: &[T],
    invariant: &dyn Fn(&S) -> Result<(), String>,
    final_check: &dyn Fn(&S) -> Result<(), String>,
) -> Result<Explored, InterleaveError> {
    let mut stats = Explored {
        schedules: 0,
        steps: 0,
        max_depth: 0,
    };
    let mut schedule = Vec::new();
    let done = vec![false; threads.len()];
    dfs(
        shared,
        threads,
        &done,
        invariant,
        final_check,
        &mut schedule,
        &mut stats,
    )?;
    Ok(stats)
}

fn dfs<S: Clone, T: ThreadModel<S>>(
    shared: &S,
    threads: &[T],
    done: &[bool],
    invariant: &dyn Fn(&S) -> Result<(), String>,
    final_check: &dyn Fn(&S) -> Result<(), String>,
    schedule: &mut Vec<usize>,
    stats: &mut Explored,
) -> Result<(), InterleaveError> {
    if done.iter().all(|&d| d) {
        stats.schedules += 1;
        stats.max_depth = stats.max_depth.max(schedule.len());
        return final_check(shared).map_err(|message| InterleaveError::FinalCheckFailed {
            message,
            schedule: schedule.clone(),
        });
    }
    let mut blocked = Vec::new();
    let mut progressed = false;
    for tid in 0..threads.len() {
        if done[tid] {
            continue;
        }
        if stats.steps >= DEFAULT_MAX_STEPS {
            return Err(InterleaveError::BoundExceeded {
                max_steps: DEFAULT_MAX_STEPS,
            });
        }
        // Fork: clone the world, step thread `tid` once.
        let mut s = shared.clone();
        let mut ts: Vec<T> = threads.to_vec();
        let mut d = done.to_vec();
        stats.steps += 1;
        match ts[tid].step(&mut s) {
            StepResult::Blocked => {
                blocked.push(tid);
                continue;
            }
            StepResult::Finished => d[tid] = true,
            StepResult::Ran => {}
        }
        progressed = true;
        schedule.push(tid);
        invariant(&s).map_err(|message| InterleaveError::InvariantViolated {
            message,
            schedule: schedule.clone(),
        })?;
        dfs(&s, &ts, &d, invariant, final_check, schedule, stats)?;
        schedule.pop();
    }
    if !progressed {
        return Err(InterleaveError::Deadlock {
            schedule: schedule.clone(),
            blocked,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A non-atomic counter increment: load then store as *separate*
    /// steps — the canonical lost-update race the checker must find.
    #[derive(Clone)]
    struct RacyIncrement {
        pc: u8,
        loaded: u64,
    }

    impl ThreadModel<u64> for RacyIncrement {
        fn step(&mut self, shared: &mut u64) -> StepResult {
            match self.pc {
                0 => {
                    self.loaded = *shared;
                    self.pc = 1;
                    StepResult::Ran
                }
                _ => {
                    *shared = self.loaded + 1;
                    StepResult::Finished
                }
            }
        }
    }

    /// The same increment as one atomic step (a fetch_add model).
    #[derive(Clone)]
    struct AtomicIncrement;

    impl ThreadModel<u64> for AtomicIncrement {
        fn step(&mut self, shared: &mut u64) -> StepResult {
            *shared += 1;
            StepResult::Finished
        }
    }

    #[test]
    fn finds_the_lost_update_race() {
        let threads = vec![
            RacyIncrement { pc: 0, loaded: 0 },
            RacyIncrement { pc: 0, loaded: 0 },
        ];
        let err = explore(&0u64, &threads, &|_| Ok(()), &|&s| {
            if s == 2 {
                Ok(())
            } else {
                Err(format!("lost update: counter is {s}, want 2"))
            }
        })
        .unwrap_err();
        match err {
            InterleaveError::FinalCheckFailed { message, schedule } => {
                assert!(message.contains("lost update"));
                // The witness is replayable: both loads before any store.
                assert_eq!(schedule.len(), 4);
            }
            other => panic!("expected FinalCheckFailed, got {other}"),
        }
    }

    #[test]
    fn atomic_increment_passes_exhaustively() {
        let threads = vec![AtomicIncrement, AtomicIncrement, AtomicIncrement];
        let explored = explore(
            &0u64,
            &threads,
            &|&s| {
                if s <= 3 {
                    Ok(())
                } else {
                    Err("overcount".into())
                }
            },
            &|&s| {
                if s == 3 {
                    Ok(())
                } else {
                    Err("undercount".into())
                }
            },
        )
        .unwrap();
        // 3 single-step threads → 3! = 6 interleavings.
        assert_eq!(explored.schedules, 6);
        assert_eq!(explored.max_depth, 3);
    }

    #[test]
    fn schedule_count_matches_closed_form() {
        // Two threads of 2 steps each: C(4,2) = 6 interleavings.
        let threads = vec![
            RacyIncrement { pc: 0, loaded: 0 },
            RacyIncrement { pc: 0, loaded: 0 },
        ];
        let explored = explore(&0u64, &threads, &|_| Ok(()), &|_| Ok(())).unwrap();
        assert_eq!(explored.schedules, 6);
        assert_eq!(explored.max_depth, 4);
    }

    /// Two threads each waiting for the other to go first.
    #[derive(Clone)]
    struct WaitsForOther {
        me: u64,
        other: u64,
    }

    impl ThreadModel<u64> for WaitsForOther {
        fn step(&mut self, shared: &mut u64) -> StepResult {
            if *shared & self.other == 0 {
                return StepResult::Blocked;
            }
            *shared |= self.me;
            StepResult::Finished
        }
    }

    #[test]
    fn deadlock_is_reported() {
        let threads = vec![
            WaitsForOther { me: 1, other: 2 },
            WaitsForOther { me: 2, other: 1 },
        ];
        let err = explore(&0u64, &threads, &|_| Ok(()), &|_| Ok(())).unwrap_err();
        assert!(matches!(err, InterleaveError::Deadlock { ref blocked, .. } if blocked == &[0, 1]));
    }

    #[test]
    fn invariant_violation_carries_witness() {
        let threads = vec![AtomicIncrement, AtomicIncrement];
        let err = explore(
            &0u64,
            &threads,
            &|&s| if s < 2 { Ok(()) } else { Err("hit two".into()) },
            &|_| Ok(()),
        )
        .unwrap_err();
        match err {
            InterleaveError::InvariantViolated { schedule, .. } => {
                assert_eq!(schedule, vec![0, 1]);
            }
            other => panic!("expected InvariantViolated, got {other}"),
        }
    }
}
