//! Static verification for the AVFS simulation workspace: catch bad
//! inputs and concurrency regressions *before* a single kernel
//! evaluation, the way an STA tool gates timing signoff.
//!
//! The paper's flow silently assumes well-formed inputs at every stage —
//! a levelizable netlist (Sec. IV.B), delay polynomials that are finite,
//! voltage-monotone and only evaluated inside the characterized `(v, c)`
//! grid (Sec. III/IV.A) — and the engine's hot path rests on a
//! hand-rolled atomic claim-bitmap + epoch-barrier protocol whose safety
//! argument otherwise lives in comments only. This crate makes all of
//! that statically checkable, in three tiers:
//!
//! * [`netlist`] — **tier 1**: structural lints over
//!   [`avfs_netlist::Netlist`] (undriven/unreachable gates, dangling
//!   nets, arity mismatches, graph-consistency, levelization, the
//!   combinational-loop witness) and [`schedule`] lints over the
//!   scenario engine's piecewise operating-point schedules
//!   (empty/unanchored/unsorted/non-finite timelines),
//! * [`model`] — **tier 2**: delay-model lints over fitted
//!   [`PolynomialModel`](avfs_delay::PolynomialModel)s (non-finite
//!   coefficients, non-positive scaling factors `1 + f(P)`,
//!   voltage-monotonicity violations, operating points outside the
//!   characterized domain),
//! * [`interleave`] + [`protocols`] — **tier 3**: a bounded
//!   exhaustive-interleaving checker (mini-loom style, in-tree, no
//!   dependencies) that model-checks the arena claim-bit single-winner
//!   and worker-pool epoch-barrier protocols over 2–3 threads,
//! * [`safety`] — a `SAFETY:` comment lint for every `unsafe` site in
//!   the workspace, enforced in CI.
//!
//! All analyses are pure and offline. Findings aggregate into a
//! schema-versioned [`Report`] (schema [`CHECK_SCHEMA`], `avfs-check/1`)
//! with a JSON round-trip, consumed by the `checker` binary in
//! `avfs-bench` and by the engine's
//! `SimOptions::strict_validation` wiring in `avfs-core`.
//!
//! # Example
//!
//! ```
//! use avfs_check::{netlist::lint_netlist, Severity};
//! use avfs_netlist::{CellLibrary, NetlistBuilder};
//!
//! # fn main() -> Result<(), avfs_netlist::NetlistError> {
//! let lib = CellLibrary::nangate15_like();
//! let mut b = NetlistBuilder::new("demo", &lib);
//! let a = b.add_input("a")?;
//! let unused = b.add_input("unused")?; // never read: AVC-N007
//! let g = b.add_gate("g", "INV_X1", &[a])?;
//! b.add_output("y", g)?;
//! let _ = unused;
//! let findings = lint_netlist(&b.finish()?);
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "AVC-N007");
//! assert_eq!(findings[0].severity, Severity::Warn);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod interleave;
pub mod model;
pub mod netlist;
pub mod protocols;
pub mod report;
pub mod safety;
pub mod schedule;

pub use interleave::{explore, Explored, InterleaveError, StepResult, ThreadModel};
pub use report::{Report, Subject, CHECK_SCHEMA};

use std::fmt;

/// How severe a finding is — mirrors a compiler's lint levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: legal but worth knowing (e.g. duplicate fan-in).
    Info,
    /// Suspicious: the simulation will run but results may not mean what
    /// the user thinks (dead logic, extrapolated operating points).
    Warn,
    /// Broken: simulating this input is meaningless or unsound; CI and
    /// `strict_validation = Deny` refuse it.
    Deny,
}

impl Severity {
    /// The canonical lower-case name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }

    /// Parses the canonical name back (report round-trips).
    pub fn from_name(name: &str) -> Option<Severity> {
        match name {
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "deny" => Some(Severity::Deny),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint finding: a rule violation at a concrete location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (`AVC-N001` …), see [`RULES`].
    pub rule: &'static str,
    /// The rule's severity.
    pub severity: Severity,
    /// Where the problem is (a node name, a `cell/pin` path, a
    /// `file:line`), empty when the finding is global.
    pub location: String,
    /// Human-readable description of this occurrence.
    pub message: String,
}

impl Finding {
    /// Creates a finding for a registered rule, taking the severity from
    /// the registry.
    ///
    /// # Panics
    ///
    /// Panics if `rule` is not in [`RULES`] — rule IDs are static by
    /// design, so an unknown ID is a programming error.
    pub fn new(
        rule: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Finding {
        let spec = rule_spec(rule).unwrap_or_else(|| panic!("unregistered lint rule `{rule}`"));
        Finding {
            rule,
            severity: spec.severity,
            location: location.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Finding {
    /// `severity rule [location]: message` — the one-line rendering used
    /// by `RunDiagnostics` and the checker's text output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.severity, self.rule)?;
        if !self.location.is_empty() {
            write!(f, " [{}]", self.location)?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Static description of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleSpec {
    /// Stable identifier (`AVC-<tier letter><number>`).
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// Which analysis tier owns the rule (1 = netlist, 2 = delay model,
    /// 3 = concurrency/unsafe audit).
    pub tier: u8,
    /// One-line description.
    pub summary: &'static str,
}

/// The complete rule registry — the check taxonomy of DESIGN.md §11.
pub const RULES: &[RuleSpec] = &[
    // ── Tier 1: netlist structure ──────────────────────────────────────
    RuleSpec {
        id: "AVC-N001",
        name: "combinational-loop",
        severity: Severity::Deny,
        tier: 1,
        summary: "netlist contains a combinational feedback loop (cycle witness attached)",
    },
    RuleSpec {
        id: "AVC-N002",
        name: "arity-mismatch",
        severity: Severity::Deny,
        tier: 1,
        summary: "gate fan-in count disagrees with its library cell's input pin count",
    },
    RuleSpec {
        id: "AVC-N003",
        name: "graph-inconsistency",
        severity: Severity::Deny,
        tier: 1,
        summary: "fan-in/fan-out cross-references disagree (corrupt or multi-driven wiring)",
    },
    RuleSpec {
        id: "AVC-N004",
        name: "level-invariant",
        severity: Severity::Deny,
        tier: 1,
        summary: "a node's level does not exceed all of its fan-ins' levels",
    },
    RuleSpec {
        id: "AVC-N005",
        name: "dangling-net",
        severity: Severity::Warn,
        tier: 1,
        summary: "internal gate output net has no fan-out (fanout-free cell)",
    },
    RuleSpec {
        id: "AVC-N006",
        name: "unobservable-gate",
        severity: Severity::Warn,
        tier: 1,
        summary: "gate reaches no primary output (dead logic cone)",
    },
    RuleSpec {
        id: "AVC-N007",
        name: "unused-input",
        severity: Severity::Warn,
        tier: 1,
        summary: "primary input drives nothing (floating stimulus)",
    },
    RuleSpec {
        id: "AVC-N008",
        name: "undriven-gate",
        severity: Severity::Warn,
        tier: 1,
        summary: "gate is unreachable from every primary input (statically constant cone)",
    },
    RuleSpec {
        id: "AVC-N009",
        name: "duplicate-fanin",
        severity: Severity::Info,
        tier: 1,
        summary: "the same net drives more than one input pin of a gate",
    },
    RuleSpec {
        id: "AVC-N010",
        name: "malformed-schedule",
        severity: Severity::Deny,
        tier: 1,
        summary:
            "a piecewise operating-point schedule is empty, unanchored, unsorted, or non-finite",
    },
    // ── Tier 2: delay models ───────────────────────────────────────────
    RuleSpec {
        id: "AVC-D001",
        name: "non-finite-coefficient",
        severity: Severity::Deny,
        tier: 2,
        summary: "a fitted polynomial surface carries a NaN or infinite coefficient",
    },
    RuleSpec {
        id: "AVC-D002",
        name: "non-positive-scaling",
        severity: Severity::Deny,
        tier: 2,
        summary: "the scaling factor 1 + f(P) is ≤ 0 somewhere on the characterized grid",
    },
    RuleSpec {
        id: "AVC-D003",
        name: "voltage-monotonicity",
        severity: Severity::Warn,
        tier: 2,
        summary: "delay factor increases with supply voltage on the sampled grid",
    },
    RuleSpec {
        id: "AVC-D004",
        name: "non-finite-factor",
        severity: Severity::Deny,
        tier: 2,
        summary: "the delay factor evaluates to NaN or infinity on the characterized grid",
    },
    RuleSpec {
        id: "AVC-D005",
        name: "extrapolated-operating-point",
        severity: Severity::Warn,
        tier: 2,
        summary: "an operating point lies outside the characterized (v, c) domain",
    },
    // ── Tier 3: concurrency / unsafe audit ─────────────────────────────
    RuleSpec {
        id: "AVC-C001",
        name: "protocol-violation",
        severity: Severity::Deny,
        tier: 3,
        summary: "the interleaving checker found a schedule violating a protocol invariant",
    },
    RuleSpec {
        id: "AVC-S001",
        name: "missing-safety-comment",
        severity: Severity::Deny,
        tier: 3,
        summary: "an `unsafe` site lacks an adjacent `SAFETY:` comment",
    },
];

/// Looks a rule up by its stable ID.
pub fn rule_spec(id: &str) -> Option<&'static RuleSpec> {
    RULES.iter().find(|r| r.id == id)
}

/// How many detailed findings one rule may emit per subject before the
/// linters summarize the rest into a single aggregate finding — keeps
/// reports (and `RunDiagnostics`) bounded on million-node corpora.
pub const MAX_FINDINGS_PER_RULE: usize = 8;

/// Truncates `findings` so no rule exceeds [`MAX_FINDINGS_PER_RULE`]
/// detailed entries, appending one aggregate finding per truncated rule.
/// Order is preserved (registry order within a lint pass), so the result
/// is deterministic.
pub fn cap_findings(findings: Vec<Finding>) -> Vec<Finding> {
    let mut out: Vec<Finding> = Vec::with_capacity(findings.len().min(64));
    for rule in RULES {
        let total = findings.iter().filter(|f| f.rule == rule.id).count();
        if total == 0 {
            continue;
        }
        out.extend(
            findings
                .iter()
                .filter(|f| f.rule == rule.id)
                .take(MAX_FINDINGS_PER_RULE)
                .cloned(),
        );
        if total > MAX_FINDINGS_PER_RULE {
            out.push(Finding::new(
                rule.id,
                "",
                format!(
                    "{} further `{}` occurrence(s) suppressed ({} total)",
                    total - MAX_FINDINGS_PER_RULE,
                    rule.name,
                    total
                ),
            ));
        }
    }
    out
}

/// Phase names the checker records when handed a
/// [`Metrics`](avfs_obs::Metrics) registry.
pub mod phases {
    /// Tier-1 netlist lint pass (one per subject).
    pub const CHECK_NETLIST: &str = "check/netlist";
    /// Tier-2 delay-model lint pass.
    pub const CHECK_MODEL: &str = "check/model";
    /// Tier-3 interleaving exploration.
    pub const CHECK_INTERLEAVE: &str = "check/interleave";
    /// Workspace `SAFETY:` comment audit.
    pub const CHECK_SAFETY: &str = "check/safety";
    /// Counter: deny-severity findings across all passes.
    pub const CHECK_DENY: &str = "check.findings_deny";
    /// Counter: warn-severity findings across all passes.
    pub const CHECK_WARN: &str = "check.findings_warn";
    /// Counter: info-severity findings across all passes.
    pub const CHECK_INFO: &str = "check.findings_info";
    /// Counter: interleavings (complete schedules) explored.
    pub const CHECK_SCHEDULES: &str = "check.schedules";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_unique_and_resolvable() {
        for (i, a) in RULES.iter().enumerate() {
            for b in &RULES[i + 1..] {
                assert_ne!(a.id, b.id, "duplicate rule id");
                assert_ne!(a.name, b.name, "duplicate rule name");
            }
            assert_eq!(rule_spec(a.id), Some(a));
        }
        assert!(rule_spec("AVC-X999").is_none());
    }

    #[test]
    fn severity_round_trips() {
        for s in [Severity::Info, Severity::Warn, Severity::Deny] {
            assert_eq!(Severity::from_name(s.name()), Some(s));
        }
        assert_eq!(Severity::from_name("fatal"), None);
        assert!(Severity::Deny > Severity::Warn && Severity::Warn > Severity::Info);
    }

    #[test]
    fn finding_display_and_severity_lookup() {
        let f = Finding::new("AVC-N005", "g3", "output net of `g3` drives nothing");
        assert_eq!(f.severity, Severity::Warn);
        assert_eq!(
            f.to_string(),
            "warn AVC-N005 [g3]: output net of `g3` drives nothing"
        );
        let global = Finding::new("AVC-C001", "", "boom");
        assert_eq!(global.to_string(), "deny AVC-C001: boom");
    }

    #[test]
    #[should_panic(expected = "unregistered lint rule")]
    fn unknown_rule_panics() {
        let _ = Finding::new("AVC-Z000", "", "nope");
    }

    #[test]
    fn cap_findings_truncates_per_rule() {
        let mut findings = Vec::new();
        for i in 0..12 {
            findings.push(Finding::new("AVC-N005", format!("g{i}"), "dangling"));
        }
        findings.push(Finding::new("AVC-N007", "a", "unused"));
        let capped = cap_findings(findings);
        let dangling: Vec<&Finding> = capped.iter().filter(|f| f.rule == "AVC-N005").collect();
        // 8 detailed + 1 aggregate.
        assert_eq!(dangling.len(), MAX_FINDINGS_PER_RULE + 1);
        assert!(dangling.last().unwrap().message.contains("4 further"));
        assert_eq!(capped.iter().filter(|f| f.rule == "AVC-N007").count(), 1);
    }
}
