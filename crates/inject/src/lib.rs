//! Deterministic fault injection: seeded fault plans over named
//! injection sites.
//!
//! The engine's recovery paths — quarantine-and-retry, per-slot panic
//! containment, kernel fallbacks, budget admission — are only trustworthy
//! if they are *exercised*. This crate provides the substrate: a
//! [`FaultPlan`] maps each registered [`InjectionSite`] to a firing rate,
//! and every decision is a **pure hash** of `(seed, site, key, salt)` —
//! not a draw from a stateful generator — so the outcome of a probe does
//! not depend on how many other probes ran before it or on which thread
//! asks. That makes injected runs deterministic under work stealing, and
//! lets a harness *predict* the affected keys by replaying
//! [`FaultPlan::decide`] offline.
//!
//! The consuming crates thread an [`Injector`] — a cheap clonable handle
//! that is `None` when no plan is armed — through their hot paths. An
//! unarmed probe is a single branch on an `Option` discriminant (the same
//! cost model as the `Option<&Metrics>` instrumentation points), and a
//! plan with every rate at zero decides `false` everywhere, so
//! armed-empty runs are bit-for-bit identical to unarmed runs.
//!
//! # Site keying contract
//!
//! Each site's `(key, salt)` pair is fixed by its host crate so that
//! tests and the chaos harness can replay decisions:
//!
//! | Site | key | salt | host |
//! |---|---|---|---|
//! | `ArenaOverflow` | global slot index | retry round | `avfs-waveform` writer hook, installed by the engine |
//! | `KernelPanic` | global slot index | retry round | engine gate task |
//! | `NonFiniteKernel` | global slot of the voltage group's first batch member | retry round | engine delay-kernel init |
//! | `WorkerStall` | pool worker index | pool epoch | `avfs-core` worker pool |
//! | `AllocCapBreach` | global slot index | denied retry round | engine retry admission |
//! | `SpiceFailure` | library cell index | 0 | `avfs-delay` characterization |
//!
//! # Example
//!
//! ```
//! use avfs_inject::{FaultPlan, InjectionSite, Injector};
//! use std::sync::Arc;
//!
//! let plan = Arc::new(FaultPlan::empty(42).with_rate(InjectionSite::KernelPanic, 1.0));
//! let injector = Injector::armed(Arc::clone(&plan));
//! assert!(injector.fires(InjectionSite::KernelPanic, 3, 0));
//! assert!(!injector.fires(InjectionSite::ArenaOverflow, 3, 0));
//! // Decisions are pure: the harness can predict them without a run.
//! assert!(plan.decide(InjectionSite::KernelPanic, 3, 0));
//! // Probes were recorded for the site-coverage report.
//! assert_eq!(plan.hits(InjectionSite::KernelPanic), 1);
//! assert_eq!(plan.fired_keys(InjectionSite::KernelPanic), vec![3]);
//! ```

#![forbid(unsafe_code)]

use avfs_prng::{Rng, SeedableRng, SmallRng};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A named place in the workspace where a fault can be forced.
///
/// The registry is closed: [`InjectionSite::ALL`] enumerates every site,
/// which is what lets the chaos harness assert 100 % site coverage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InjectionSite {
    /// A gate task's arena write reports `CapacityOverflow` even though
    /// the cell had room — exercises quarantine-and-retry.
    ArenaOverflow,
    /// A gate task panics inside its `catch_unwind` — exercises per-slot
    /// panic containment.
    KernelPanic,
    /// A delay-kernel scaling factor comes back non-finite — exercises
    /// the nominal-delay fallback guard.
    NonFiniteKernel,
    /// A pool worker sleeps before joining an epoch — exercises the
    /// stall watchdog (timing only; never changes results).
    WorkerStall,
    /// A quarantine-retry round is denied capacity growth — exercises
    /// memory-budget admission control.
    AllocCapBreach,
    /// A cell characterization fails as a SPICE sweep would — exercises
    /// the offline flow's error propagation.
    SpiceFailure,
}

/// Number of registered injection sites.
pub const SITE_COUNT: usize = 6;

impl InjectionSite {
    /// Every registered site, in stable order.
    pub const ALL: [InjectionSite; SITE_COUNT] = [
        InjectionSite::ArenaOverflow,
        InjectionSite::KernelPanic,
        InjectionSite::NonFiniteKernel,
        InjectionSite::WorkerStall,
        InjectionSite::AllocCapBreach,
        InjectionSite::SpiceFailure,
    ];

    /// Stable index of the site within [`InjectionSite::ALL`].
    pub fn index(self) -> usize {
        match self {
            InjectionSite::ArenaOverflow => 0,
            InjectionSite::KernelPanic => 1,
            InjectionSite::NonFiniteKernel => 2,
            InjectionSite::WorkerStall => 3,
            InjectionSite::AllocCapBreach => 4,
            InjectionSite::SpiceFailure => 5,
        }
    }

    /// Stable machine-readable name (used in reports and coverage tables).
    pub fn name(self) -> &'static str {
        match self {
            InjectionSite::ArenaOverflow => "arena-overflow",
            InjectionSite::KernelPanic => "kernel-panic",
            InjectionSite::NonFiniteKernel => "non-finite-kernel",
            InjectionSite::WorkerStall => "worker-stall",
            InjectionSite::AllocCapBreach => "alloc-cap-breach",
            InjectionSite::SpiceFailure => "spice-failure",
        }
    }
}

impl fmt::Display for InjectionSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A seeded assignment of firing rates to injection sites, plus the
/// record of what actually fired.
///
/// Decisions are pure functions of `(seed, site, key, salt)` (SplitMix64
/// finalizer over the mixed words); the recording side — per-site hit
/// counters and the fired `(site, key)` set — uses atomics and a mutex
/// whose *contents* are order-independent sets and sums, so concurrent
/// probes from a racing worker pool still produce one deterministic
/// record.
pub struct FaultPlan {
    seed: u64,
    rates: [f64; SITE_COUNT],
    stall: Duration,
    hits: [AtomicU64; SITE_COUNT],
    fired: Mutex<BTreeSet<(u8, u64)>>,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("rates", &self.rates)
            .field("stall", &self.stall)
            .field("total_fired", &self.total_fired())
            .finish()
    }
}

impl FaultPlan {
    /// A plan with every rate at zero: armed but inert. Runs with this
    /// plan are bit-for-bit identical to unarmed runs.
    pub fn empty(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: [0.0; SITE_COUNT],
            stall: Duration::from_millis(20),
            hits: Default::default(),
            fired: Mutex::new(BTreeSet::new()),
        }
    }

    /// Sets `site`'s firing rate (clamped to `[0, 1]`; NaN means 0).
    pub fn with_rate(mut self, site: InjectionSite, rate: f64) -> FaultPlan {
        self.rates[site.index()] = if rate.is_nan() {
            0.0
        } else {
            rate.clamp(0.0, 1.0)
        };
        self
    }

    /// Sets the sleep a firing [`InjectionSite::WorkerStall`] imposes.
    pub fn with_stall(mut self, stall: Duration) -> FaultPlan {
        self.stall = stall;
        self
    }

    /// A randomized plan: each site's rate is drawn uniformly from
    /// `[0, max_rate]` by a generator seeded with `seed`, so the whole
    /// plan — rates and every decision — replays from the seed alone.
    pub fn randomized(seed: u64, max_rate: f64) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plan = FaultPlan::empty(seed);
        for site in InjectionSite::ALL {
            let rate = rng.gen::<f64>() * max_rate.clamp(0.0, 1.0);
            plan = plan.with_rate(site, rate);
        }
        plan
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `site`'s firing rate.
    pub fn rate(&self, site: InjectionSite) -> f64 {
        self.rates[site.index()]
    }

    /// The worker-stall sleep duration.
    pub fn stall(&self) -> Duration {
        self.stall
    }

    /// Pure decision: would `(site, key, salt)` fire under this plan?
    /// Records nothing — this is the replay/prediction entry point.
    pub fn decide(&self, site: InjectionSite, key: u64, salt: u64) -> bool {
        let rate = self.rates[site.index()];
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        // SplitMix64 finalizer over the mixed words: high-quality
        // avalanche, so nearby keys/salts decide independently.
        let mut z = self
            .seed
            .wrapping_add((site.index() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(key.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(salt.wrapping_mul(0x94D0_49BB_1331_11EB));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ((z >> 11) as f64 / (1u64 << 53) as f64) < rate
    }

    /// Decision plus recording: bumps the site's hit counter and adds
    /// `(site, key)` to the fired set when the decision is `true`.
    pub fn fire(&self, site: InjectionSite, key: u64, salt: u64) -> bool {
        let fired = self.decide(site, key, salt);
        if fired {
            self.hits[site.index()].fetch_add(1, Ordering::Relaxed);
            self.fired
                .lock()
                .expect("fault-plan record lock")
                .insert((site.index() as u8, key));
        }
        fired
    }

    /// How many probes of `site` fired so far.
    pub fn hits(&self, site: InjectionSite) -> u64 {
        self.hits[site.index()].load(Ordering::Relaxed)
    }

    /// Total fired probes across all sites.
    pub fn total_fired(&self) -> u64 {
        self.hits.iter().map(|h| h.load(Ordering::Relaxed)).sum()
    }

    /// The distinct keys on which `site` fired, ascending.
    pub fn fired_keys(&self, site: InjectionSite) -> Vec<u64> {
        let fired = self.fired.lock().expect("fault-plan record lock");
        fired
            .iter()
            .filter(|(s, _)| *s as usize == site.index())
            .map(|&(_, k)| k)
            .collect()
    }

    /// The sites that fired at least once, in registry order.
    pub fn sites_fired(&self) -> Vec<InjectionSite> {
        InjectionSite::ALL
            .into_iter()
            .filter(|&s| self.hits(s) > 0)
            .collect()
    }

    /// Clears the hit counters and the fired set (rates stay).
    pub fn reset_record(&self) {
        for h in &self.hits {
            h.store(0, Ordering::Relaxed);
        }
        self.fired.lock().expect("fault-plan record lock").clear();
    }
}

/// A cheap clonable handle threading a fault plan (or nothing) through
/// the simulation stack.
///
/// The unarmed handle is the default everywhere; probing it is one
/// branch on the `Option` discriminant and touches no shared state.
#[derive(Clone, Default)]
pub struct Injector(Option<Arc<FaultPlan>>);

impl fmt::Debug for Injector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            None => f.write_str("Injector(unarmed)"),
            Some(plan) => f.debug_tuple("Injector").field(plan).finish(),
        }
    }
}

impl Injector {
    /// The no-op handle: every probe decides `false`.
    pub fn unarmed() -> Injector {
        Injector(None)
    }

    /// A handle armed with `plan`.
    pub fn armed(plan: Arc<FaultPlan>) -> Injector {
        Injector(Some(plan))
    }

    /// Whether a plan is armed (an armed-empty plan still reports `true`).
    pub fn is_armed(&self) -> bool {
        self.0.is_some()
    }

    /// The armed plan, if any.
    pub fn plan(&self) -> Option<&Arc<FaultPlan>> {
        self.0.as_ref()
    }

    /// Probes `(site, key, salt)`: `false` when unarmed, otherwise the
    /// plan's recorded decision.
    #[inline]
    pub fn fires(&self, site: InjectionSite, key: u64, salt: u64) -> bool {
        match &self.0 {
            None => false,
            Some(plan) => plan.fire(site, key, salt),
        }
    }

    /// Passes `factor` through, or poisons it to `f64::INFINITY` when
    /// the [`InjectionSite::NonFiniteKernel`] probe fires.
    #[inline]
    pub fn corrupt_factor(&self, factor: f64, key: u64, salt: u64) -> f64 {
        if self.fires(InjectionSite::NonFiniteKernel, key, salt) {
            f64::INFINITY
        } else {
            factor
        }
    }

    /// The sleep to impose at a [`InjectionSite::WorkerStall`] probe,
    /// if it fires.
    #[inline]
    pub fn stall_duration(&self, key: u64, salt: u64) -> Option<Duration> {
        match &self.0 {
            None => None,
            Some(plan) => {
                if plan.fire(InjectionSite::WorkerStall, key, salt) {
                    Some(plan.stall())
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::empty(7);
        for site in InjectionSite::ALL {
            for key in 0..64 {
                assert!(!plan.decide(site, key, 0));
                assert!(!plan.fire(site, key, 1));
            }
        }
        assert_eq!(plan.total_fired(), 0);
        assert!(plan.sites_fired().is_empty());
    }

    #[test]
    fn rate_one_always_fires_and_records() {
        let plan = FaultPlan::empty(3).with_rate(InjectionSite::ArenaOverflow, 1.0);
        for key in 0..10 {
            assert!(plan.fire(InjectionSite::ArenaOverflow, key, 0));
        }
        assert_eq!(plan.hits(InjectionSite::ArenaOverflow), 10);
        assert_eq!(
            plan.fired_keys(InjectionSite::ArenaOverflow),
            (0..10).collect::<Vec<_>>()
        );
        assert_eq!(plan.sites_fired(), vec![InjectionSite::ArenaOverflow]);
        plan.reset_record();
        assert_eq!(plan.total_fired(), 0);
    }

    #[test]
    fn decisions_are_pure_and_seed_deterministic() {
        let a = FaultPlan::empty(99).with_rate(InjectionSite::KernelPanic, 0.5);
        let b = FaultPlan::empty(99).with_rate(InjectionSite::KernelPanic, 0.5);
        let c = FaultPlan::empty(100).with_rate(InjectionSite::KernelPanic, 0.5);
        let decisions = |p: &FaultPlan| -> Vec<bool> {
            (0..256)
                .map(|k| p.decide(InjectionSite::KernelPanic, k, 4))
                .collect()
        };
        assert_eq!(decisions(&a), decisions(&b));
        assert_ne!(decisions(&a), decisions(&c), "seed must matter");
        // Roughly half fire at rate 0.5.
        let count = decisions(&a).iter().filter(|&&d| d).count();
        assert!((64..192).contains(&count), "rate 0.5 fired {count}/256");
        // Probe order cannot matter: ask in reverse, get the same answers.
        let forward = decisions(&a);
        let reverse: Vec<bool> = (0..256)
            .rev()
            .map(|k| a.decide(InjectionSite::KernelPanic, k, 4))
            .collect();
        assert_eq!(forward, reverse.into_iter().rev().collect::<Vec<_>>());
    }

    #[test]
    fn sites_decide_independently() {
        let plan = FaultPlan::randomized(11, 1.0);
        let per_site: Vec<Vec<bool>> = InjectionSite::ALL
            .iter()
            .map(|&s| (0..128).map(|k| plan.decide(s, k, 0)).collect())
            .collect();
        // No two sites share the identical decision vector (rates and
        // hashes differ per site).
        for i in 0..per_site.len() {
            for j in i + 1..per_site.len() {
                assert_ne!(per_site[i], per_site[j], "sites {i} and {j} collide");
            }
        }
    }

    #[test]
    fn randomized_plan_replays_from_seed() {
        let a = FaultPlan::randomized(5, 0.3);
        let b = FaultPlan::randomized(5, 0.3);
        for site in InjectionSite::ALL {
            assert_eq!(a.rate(site), b.rate(site));
            assert!(a.rate(site) <= 0.3);
        }
    }

    #[test]
    fn unarmed_injector_is_inert() {
        let inj = Injector::unarmed();
        assert!(!inj.is_armed());
        assert!(!inj.fires(InjectionSite::SpiceFailure, 0, 0));
        assert_eq!(inj.corrupt_factor(1.25, 0, 0), 1.25);
        assert!(inj.stall_duration(0, 0).is_none());
    }

    #[test]
    fn armed_injector_records_through_the_plan() {
        let plan = Arc::new(
            FaultPlan::empty(1)
                .with_rate(InjectionSite::WorkerStall, 1.0)
                .with_stall(Duration::from_millis(1)),
        );
        let inj = Injector::armed(Arc::clone(&plan));
        assert!(inj.is_armed());
        assert_eq!(inj.stall_duration(2, 9), Some(Duration::from_millis(1)));
        assert_eq!(plan.hits(InjectionSite::WorkerStall), 1);
        assert_eq!(plan.fired_keys(InjectionSite::WorkerStall), vec![2]);
    }

    #[test]
    fn site_names_stable_and_distinct() {
        let mut names: Vec<&str> = InjectionSite::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), SITE_COUNT);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SITE_COUNT, "site names must be distinct");
        for (i, site) in InjectionSite::ALL.into_iter().enumerate() {
            assert_eq!(site.index(), i);
        }
    }
}
