//! Criterion bench: waveform-algebra primitives.
//!
//! The waveform-processing loop dominates the engine's runtime ("the
//! overall GPU-runtime is dominated by the memory overhead for storing
//! the waveforms"); this bench isolates the per-gate evaluation cost for
//! typical activity levels.

use avfs_waveform::{evaluate_gate, PinDelays, Waveform};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn make_waveform(transitions: usize, stride: f64, offset: f64) -> Waveform {
    let times: Vec<f64> = (0..transitions)
        .map(|k| offset + stride * k as f64)
        .collect();
    Waveform::with_transitions(false, times).expect("strictly increasing")
}

fn bench_gate_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_eval_nand2");
    for transitions in [1usize, 4, 16, 64] {
        let a = make_waveform(transitions, 10.0, 0.0);
        let b_wf = make_waveform(transitions, 13.0, 3.0);
        let delays = [
            PinDelays {
                rise: 8.0,
                fall: 9.0,
            },
            PinDelays {
                rise: 7.5,
                fall: 8.5,
            },
        ];
        group.bench_with_input(
            BenchmarkId::from_parameter(transitions),
            &transitions,
            |bencher, _| {
                bencher.iter(|| {
                    let out = evaluate_gate(black_box(&[&a, &b_wf]), black_box(&delays), |v| {
                        !(v[0] && v[1])
                    });
                    black_box(out)
                })
            },
        );
    }
    group.finish();
}

fn bench_pulse_filter(c: &mut Criterion) {
    let wf = make_waveform(128, 3.0, 0.0);
    c.bench_function("filter_pulses_128", |b| {
        b.iter(|| black_box(wf.filter_pulses(black_box(4.0))))
    });
}

criterion_group!(benches, bench_gate_eval, bench_pulse_filter);
criterion_main!(benches);
