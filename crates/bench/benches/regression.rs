//! Criterion bench: regression fit time per polynomial order.
//!
//! The paper reports that "obtaining the coefficients β̂ by regression
//! took between 1 and 40 milliseconds" per coefficient set (Sec. V.A,
//! ablation A1). This bench fits the same-size problem: a densified
//! 45 × 33 sample grid (12 × 9 sweep refined 4×).

use avfs_regression::{fit_least_squares, DataGrid, PolyBasis};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

/// A smooth synthetic deviation surface over the unit square, shaped like
/// a real cell's (steeper at low voltage, mild in load).
fn surface(v: f64, c: f64) -> f64 {
    0.8 * (1.0 - v).powi(2) - 0.25 * v + 0.05 * c + 0.1 * (1.0 - v) * c
}

fn bench_fit(c: &mut Criterion) {
    // 12 voltages × 9 loads, refined 4× per axis → 45 × 33 samples.
    let xs: Vec<f64> = (0..12).map(|i| i as f64 / 11.0).collect();
    let ys: Vec<f64> = (0..9).map(|j| j as f64 / 8.0).collect();
    let grid = DataGrid::from_fn(xs, ys, surface).expect("valid grid");
    let refined = grid.refine(4);
    let samples: Vec<(f64, f64)> = refined.samples().map(|(v, c, _)| (v, c)).collect();
    let targets: Vec<f64> = refined.samples().map(|(_, _, d)| d).collect();

    let mut group = c.benchmark_group("ols_fit");
    for order in [1usize, 2, 3, 4, 5] {
        let basis = PolyBasis::new(order);
        group.bench_with_input(BenchmarkId::from_parameter(order), &order, |b, _| {
            b.iter(|| {
                let beta = fit_least_squares(&basis, black_box(&samples), black_box(&targets))
                    .expect("fit succeeds");
                black_box(beta)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fit);
criterion_main!(benches);
