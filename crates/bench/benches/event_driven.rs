//! Criterion bench: the serial event-driven baseline.
//!
//! Same circuit and patterns as `engine.rs`, simulated by the
//! conventional event-queue algorithm — the denominator of every speedup
//! the paper reports. Compare `event_driven/baseline` against
//! `engine_throughput/*` to reproduce the Table I shape.

use avfs_atpg::PatternSet;
use avfs_circuits::{random_netlist, GeneratorConfig};
use avfs_core::{slots, EventDrivenSimulator};
use avfs_delay::characterize::{characterize_library, CharacterizationConfig};
use avfs_netlist::{CellLibrary, NodeKind};
use avfs_spice::Technology;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;

fn bench_event_driven(c: &mut Criterion) {
    let library = CellLibrary::nangate15_like();
    let config = GeneratorConfig {
        nodes: 4000,
        inputs: 64,
        outputs: 64,
        depth: 24,
        two_input_fraction: 0.72,
    };
    let netlist = Arc::new(random_netlist("bench4k", &config, &library, 99).expect("generates"));
    let used: Vec<_> = {
        let mut set = std::collections::BTreeSet::new();
        for (_, node) in netlist.iter() {
            if let NodeKind::Gate(cell) = node.kind() {
                set.insert(cell);
            }
        }
        set.into_iter().collect()
    };
    let chars = characterize_library(
        &library,
        &Technology::nm15(),
        &CharacterizationConfig::fast(),
        Some(&used),
    )
    .expect("characterization succeeds");
    let annotation = Arc::new(chars.annotate(&netlist).expect("annotation"));
    let patterns = PatternSet::lfsr(netlist.inputs().len(), 16, 3);
    let slot_list = slots::at_voltage(patterns.len(), 0.8);
    let evals = (netlist.num_nodes() * slot_list.len()) as u64;

    let simulator =
        EventDrivenSimulator::new(Arc::clone(&netlist), annotation).expect("positive delays");
    let mut group = c.benchmark_group("event_driven");
    group.sample_size(10);
    group.throughput(Throughput::Elements(evals));
    group.bench_function("baseline", |b| {
        b.iter(|| simulator.run(&patterns, &slot_list, false).expect("runs"))
    });
    group.finish();
}

criterion_group!(benches, bench_event_driven);
criterion_main!(benches);
