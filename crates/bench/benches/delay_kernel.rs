//! Criterion bench: the delay-kernel hot path.
//!
//! Measures (a) nested-Horner evaluation of the deviation polynomial per
//! order — the arithmetic the paper offloads to the GPU's FMA units — and
//! (b) the full table lookup + evaluate step the engine performs per
//! (gate, pin, polarity), which backs the paper's "no significant runtime
//! impact even for higher degree polynomials" observation (A3).

use avfs_delay::op::NormalizedPoint;
use avfs_delay::{CoefficientTable, SurfacePolynomial};
use avfs_netlist::library::{CellId, Polarity};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn coefficients(order: usize) -> Vec<f64> {
    (0..(order + 1) * (order + 1))
        .map(|k| 0.01 * (k as f64) - 0.07)
        .collect()
}

fn bench_horner(c: &mut Criterion) {
    let mut group = c.benchmark_group("horner_eval");
    for order in [1usize, 2, 3, 4, 5] {
        let poly = SurfacePolynomial::new(order, coefficients(order)).expect("valid");
        group.bench_with_input(BenchmarkId::from_parameter(order), &order, |b, _| {
            b.iter(|| {
                let p = NormalizedPoint {
                    v: black_box(0.4545),
                    c: black_box(0.625),
                };
                black_box(poly.eval(p))
            })
        });
    }
    group.finish();
}

fn bench_table_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_lookup_eval");
    for order in [1usize, 3, 5] {
        let mut table = CoefficientTable::new(8, order);
        let surf = SurfacePolynomial::new(order, coefficients(order)).expect("valid");
        for cell in 0..8 {
            table
                .insert(
                    CellId::from_index(cell),
                    &[[surf.clone(), surf.clone()], [surf.clone(), surf.clone()]],
                )
                .expect("insert succeeds");
        }
        group.bench_with_input(BenchmarkId::from_parameter(order), &order, |b, _| {
            let p = NormalizedPoint { v: 0.3, c: 0.7 };
            let mut cell = 0usize;
            b.iter(|| {
                cell = (cell + 1) % 8;
                let d = table
                    .deviation(CellId::from_index(cell), 1, Polarity::Fall, black_box(p))
                    .expect("entry exists");
                black_box(d)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_horner, bench_table_lookup);
criterion_main!(benches);
