//! Criterion bench: parallel-engine throughput (node evaluations/s).
//!
//! One mid-size synthetic circuit simulated with (a) static delays — the
//! \[25\] baseline column of Table I — and (b) polynomial kernels of order
//! N = 3 — the proposed method. The relative gap between the two is the
//! paper's "negligible runtime overhead" claim for the online delay
//! calculation.

use avfs_atpg::PatternSet;
use avfs_circuits::{random_netlist, GeneratorConfig};
use avfs_core::{slots, Engine, SimOptions};
use avfs_delay::characterize::{characterize_library, CharacterizationConfig};
use avfs_delay::StaticModel;
use avfs_netlist::{CellLibrary, NetlistStats, NodeKind};
use avfs_spice::Technology;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;

fn bench_engine(c: &mut Criterion) {
    let library = CellLibrary::nangate15_like();
    let config = GeneratorConfig {
        nodes: 4000,
        inputs: 64,
        outputs: 64,
        depth: 24,
        two_input_fraction: 0.72,
    };
    let netlist = Arc::new(random_netlist("bench4k", &config, &library, 99).expect("generates"));
    let stats = NetlistStats::of(&netlist);

    // Characterize exactly the used cells, coarse but real.
    let used: Vec<_> = {
        let mut set = std::collections::BTreeSet::new();
        for (_, node) in netlist.iter() {
            if let NodeKind::Gate(cell) = node.kind() {
                set.insert(cell);
            }
        }
        set.into_iter().collect()
    };
    let chars = characterize_library(
        &library,
        &Technology::nm15(),
        &CharacterizationConfig::fast(),
        Some(&used),
    )
    .expect("characterization succeeds");
    let annotation = Arc::new(chars.annotate(&netlist).expect("annotation"));
    let patterns = PatternSet::lfsr(netlist.inputs().len(), 16, 3);
    let slot_list = slots::at_voltage(patterns.len(), 0.8);
    let opts = SimOptions {
        threads: 1,
        ..SimOptions::default()
    };
    let evals = (stats.nodes * slot_list.len()) as u64;

    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(20);
    group.throughput(Throughput::Elements(evals));

    let static_engine = Engine::new(
        Arc::clone(&netlist),
        Arc::clone(&annotation),
        Arc::new(StaticModel::new(*chars.space())),
    )
    .expect("engine builds");
    group.bench_function("static_delays", |b| {
        b.iter(|| {
            static_engine
                .run(&patterns, &slot_list, &opts)
                .expect("runs")
        })
    });

    let poly_engine = Engine::new(
        Arc::clone(&netlist),
        Arc::clone(&annotation),
        Arc::new(chars.model().clone()),
    )
    .expect("engine builds");
    group.bench_function("polynomial_n3", |b| {
        b.iter(|| poly_engine.run(&patterns, &slot_list, &opts).expect("runs"))
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
