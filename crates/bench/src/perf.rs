//! The machine-readable performance report emitted by `perf_report` —
//! the schema-versioned `BENCH_core.json` that gives the repo's perf
//! trajectory its baseline points.
//!
//! The report is plain data with a JSON round-trip built on
//! [`avfs_obs::Json`]; [`PerfReport::from_json`] doubles as the schema
//! validator used by `perf_report --smoke` and CI.

use avfs_core::Profile;
use avfs_obs::{Json, JsonError};

/// Schema identifier embedded in every report.
pub const PERF_SCHEMA: &str = "avfs-perf-report/1";

/// A full performance report: environment block plus one entry per
/// benchmarked circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Circuit scale factor relative to the paper's node counts.
    pub scale: f64,
    /// Cap on pattern pairs per circuit.
    pub pairs_cap: u64,
    /// Engine worker threads.
    pub threads: u64,
    /// Target architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Target OS (`std::env::consts::OS`).
    pub os: String,
    /// Per-circuit measurements.
    pub circuits: Vec<CircuitPerf>,
    /// Worker-pool scaling sweep over one circuit (absent in reports
    /// predating the persistent-pool engine).
    pub thread_scaling: Option<ThreadScaling>,
    /// Activity-gating sweep over one circuit (absent in reports
    /// predating the activity-gated engine).
    pub activity_sweep: Option<ActivitySweep>,
    /// Lane-width scaling sweep over one circuit (absent in reports
    /// predating the lane-major engine).
    pub lane_scaling: Option<LaneScaling>,
    /// Compile-once / simulate-many amortization workload (absent in
    /// reports predating the batch runner).
    pub batch_throughput: Option<BatchThroughput>,
    /// Scenario-engine Monte Carlo sweep: failure probability vs supply
    /// voltage under droop schedules (absent in reports predating the
    /// scenario engine).
    pub scenario_sweep: Option<ScenarioSweep>,
}

/// Scenario-engine measurement: one droop-schedule grid per supply
/// voltage, each scenario expanded into Monte Carlo process-variation
/// dice, reduced into the failure-probability-vs-voltage curve against a
/// capture deadline (DESIGN.md §15).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSweep {
    /// Circuit the sweep ran on.
    pub circuit: String,
    /// Netlist nodes of that circuit.
    pub nodes: u64,
    /// Pattern pairs simulated per voltage point.
    pub pairs: u64,
    /// Monte Carlo dice per scenario.
    pub samples: u64,
    /// Variation seed (the sweep replays exactly from it).
    pub seed: u64,
    /// Relative sigma of the per-pin delay derate.
    pub sigma: f64,
    /// Capture deadline failures were counted against, ps.
    pub capture_deadline_ps: f64,
    /// Wall-clock of the whole sweep launch, milliseconds.
    pub elapsed_ms: f64,
    /// One curve point per nominal supply voltage, ascending.
    pub points: Vec<ScenarioPoint>,
}

/// One point of a [`ScenarioSweep`] failure-probability curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPoint {
    /// Nominal (segment-0) supply voltage of the droop schedule, V.
    pub voltage: f64,
    /// Completed Monte Carlo samples at this voltage.
    pub samples: u64,
    /// Samples whose latest output transition missed the deadline.
    pub failures: u64,
    /// `failures / samples`.
    pub p_fail: f64,
}

/// Compile-once / simulate-many measurement: the same N-run workload
/// executed once with a fresh `Engine::new` per run (compile paid N
/// times, pool respawned N times) and once through a `BatchRunner`
/// (compile paid once, pool parked), plus a shard-size sweep of one
/// oversized grid stitched back bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchThroughput {
    /// Circuit the workload ran on.
    pub circuit: String,
    /// Netlist nodes of that circuit.
    pub nodes: u64,
    /// Repeated runs in the amortization workload.
    pub runs: u64,
    /// Pattern pairs per run.
    pub pairs: u64,
    /// Simulation slots per run.
    pub slots: u64,
    /// Total wall-clock of the per-run-compile workload, milliseconds.
    pub per_run_ms: f64,
    /// Total wall-clock of the compile-once workload, milliseconds.
    pub batched_ms: f64,
    /// `per_run_ms / batched_ms` — the amortization payoff.
    pub speedup: f64,
    /// Artifact-cache hits across the batched workload (`runs − 1` when
    /// every run reuses the one compiled artifact).
    pub compile_hits: u64,
    /// Artifact-cache misses (compiles performed) across the batched
    /// workload — 1 for a compile-once workload.
    pub compile_misses: u64,
    /// Shard-size sweep of one grid larger than a single arena batch,
    /// each point stitched and compared against the unsharded reference.
    pub shard_points: Vec<ShardPoint>,
}

/// One point of a [`BatchThroughput`] shard sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPoint {
    /// Requested shard size, slots (`0` = auto: one arena batch).
    pub shard_slots: u64,
    /// Shards the grid actually split into.
    pub shards: u64,
    /// Wall-clock of the sharded run, milliseconds.
    pub elapsed_ms: f64,
    /// Whether slots and diagnostics were bit-identical to the
    /// unsharded reference run (must always be `true`; recorded so a
    /// regression is visible in the committed report).
    pub identical: bool,
}

/// Lane-width scaling sweep of the lane-major engine: the report's
/// largest circuit re-run at increasing lane widths on otherwise
/// identical inputs, with results asserted bit-identical to the sweep's
/// own scalar (lane width 1) point.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneScaling {
    /// Circuit the sweep ran on.
    pub circuit: String,
    /// Netlist nodes of that circuit.
    pub nodes: u64,
    /// Pattern pairs simulated per point.
    pub pairs: u64,
    /// Simulation slots per point.
    pub slots: u64,
    /// One measurement per lane width, ascending.
    pub points: Vec<LanePoint>,
}

/// One point of a [`LaneScaling`] sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LanePoint {
    /// Lane width of this point.
    pub lanes: u64,
    /// Engine wall-clock, milliseconds.
    pub elapsed_ms: f64,
    /// Speedup versus the sweep's own scalar (lane width 1) point.
    pub speedup_vs_scalar: f64,
}

/// Activity-gating sweep: the report's largest circuit re-run at
/// increasing stimuli activity factors, with the engine's quiet-cell
/// fast path on versus off on otherwise identical inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivitySweep {
    /// Circuit the sweep ran on.
    pub circuit: String,
    /// Netlist nodes of that circuit.
    pub nodes: u64,
    /// Pattern pairs simulated per point.
    pub pairs: u64,
    /// Simulation slots per point.
    pub slots: u64,
    /// One measurement per activity factor, ascending.
    pub points: Vec<ActivityPoint>,
}

/// One point of an [`ActivitySweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityPoint {
    /// Probability that an input toggles between launch and capture
    /// (see `avfs_bench::activity_patterns`).
    pub activity_factor: f64,
    /// Gated engine wall-clock, milliseconds.
    pub gated_ms: f64,
    /// Ungated engine wall-clock, milliseconds.
    pub ungated_ms: f64,
    /// `ungated_ms / gated_ms` — the activity-gating payoff at this point.
    pub speedup: f64,
    /// Gate tasks the gated run resolved via the quiet-cell fast path
    /// (`engine.gates_skipped_quiet`).
    pub gates_skipped_quiet: u64,
    /// Total (slot, gate) tasks of the gated run, for the skip share.
    pub gate_tasks: u64,
}

/// Thread-scaling sweep of the persistent worker pool: the report's
/// largest circuit re-run at increasing worker counts on otherwise
/// identical inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadScaling {
    /// Circuit the sweep ran on.
    pub circuit: String,
    /// Netlist nodes of that circuit.
    pub nodes: u64,
    /// Pattern pairs simulated per point.
    pub pairs: u64,
    /// Simulation slots per point.
    pub slots: u64,
    /// `engine_elapsed_ms` of the same circuit in the previously committed
    /// report (the fork-join engine), when one was available to compare
    /// against.
    pub prior_engine_elapsed_ms: Option<f64>,
    /// One measurement per worker count, ascending.
    pub points: Vec<ScalingPoint>,
}

/// One point of a [`ThreadScaling`] sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// Worker count of this point.
    pub threads: u64,
    /// Engine wall-clock, milliseconds.
    pub elapsed_ms: f64,
    /// Speedup versus the sweep's own single-worker point.
    pub speedup_vs_single: f64,
}

/// Measurements of one circuit: the event-driven baseline and the
/// parallel polynomial engine on identical inputs, with phase-level
/// profiles of both.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitPerf {
    /// Circuit name (paper Table I designs, or `c17` in smoke mode).
    pub name: String,
    /// Netlist nodes.
    pub nodes: u64,
    /// Levelization depth.
    pub levels: u64,
    /// Pattern pairs simulated.
    pub pairs: u64,
    /// Simulation slots (pattern, operating point).
    pub slots: u64,
    /// Event-driven baseline wall-clock, milliseconds.
    pub ed_elapsed_ms: f64,
    /// Event-driven throughput, million node evaluations per second.
    pub ed_meps: f64,
    /// Parallel engine wall-clock, milliseconds.
    pub engine_elapsed_ms: f64,
    /// Parallel engine throughput, MEPS (the paper's Table I metric).
    pub engine_meps: f64,
    /// `ed_elapsed_ms / engine_elapsed_ms` — the Table I "X" column.
    pub speedup_vs_event_driven: f64,
    /// Phase-level profile of the engine run (`avfs-profile/1`).
    pub engine_profile: Profile,
    /// Phase-level profile of the baseline run (`avfs-profile/1`).
    pub ed_profile: Profile,
}

impl PerfReport {
    /// Serializes to the schema-versioned JSON document.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema".into(), Json::Str(PERF_SCHEMA.into())),
            (
                "environment".into(),
                Json::Obj(vec![
                    ("scale".into(), Json::Num(self.scale)),
                    ("pairs_cap".into(), Json::Num(self.pairs_cap as f64)),
                    ("threads".into(), Json::Num(self.threads as f64)),
                    ("arch".into(), Json::Str(self.arch.clone())),
                    ("os".into(), Json::Str(self.os.clone())),
                ]),
            ),
            (
                "circuits".into(),
                Json::Arr(
                    self.circuits
                        .iter()
                        .map(|c| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(c.name.clone())),
                                ("nodes".into(), Json::Num(c.nodes as f64)),
                                ("levels".into(), Json::Num(c.levels as f64)),
                                ("pairs".into(), Json::Num(c.pairs as f64)),
                                ("slots".into(), Json::Num(c.slots as f64)),
                                ("ed_elapsed_ms".into(), Json::Num(c.ed_elapsed_ms)),
                                ("ed_meps".into(), Json::Num(c.ed_meps)),
                                ("engine_elapsed_ms".into(), Json::Num(c.engine_elapsed_ms)),
                                ("engine_meps".into(), Json::Num(c.engine_meps)),
                                (
                                    "speedup_vs_event_driven".into(),
                                    Json::Num(c.speedup_vs_event_driven),
                                ),
                                ("engine_profile".into(), c.engine_profile.to_json()),
                                ("ed_profile".into(), c.ed_profile.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(ts) = &self.thread_scaling {
            fields.push((
                "thread_scaling".into(),
                Json::Obj(vec![
                    ("circuit".into(), Json::Str(ts.circuit.clone())),
                    ("nodes".into(), Json::Num(ts.nodes as f64)),
                    ("pairs".into(), Json::Num(ts.pairs as f64)),
                    ("slots".into(), Json::Num(ts.slots as f64)),
                    (
                        "prior_engine_elapsed_ms".into(),
                        ts.prior_engine_elapsed_ms.map_or(Json::Null, Json::Num),
                    ),
                    (
                        "points".into(),
                        Json::Arr(
                            ts.points
                                .iter()
                                .map(|p| {
                                    Json::Obj(vec![
                                        ("threads".into(), Json::Num(p.threads as f64)),
                                        ("elapsed_ms".into(), Json::Num(p.elapsed_ms)),
                                        (
                                            "speedup_vs_single".into(),
                                            Json::Num(p.speedup_vs_single),
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        if let Some(ls) = &self.lane_scaling {
            fields.push((
                "lane_scaling".into(),
                Json::Obj(vec![
                    ("circuit".into(), Json::Str(ls.circuit.clone())),
                    ("nodes".into(), Json::Num(ls.nodes as f64)),
                    ("pairs".into(), Json::Num(ls.pairs as f64)),
                    ("slots".into(), Json::Num(ls.slots as f64)),
                    (
                        "points".into(),
                        Json::Arr(
                            ls.points
                                .iter()
                                .map(|p| {
                                    Json::Obj(vec![
                                        ("lanes".into(), Json::Num(p.lanes as f64)),
                                        ("elapsed_ms".into(), Json::Num(p.elapsed_ms)),
                                        (
                                            "speedup_vs_scalar".into(),
                                            Json::Num(p.speedup_vs_scalar),
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        if let Some(bt) = &self.batch_throughput {
            fields.push((
                "batch_throughput".into(),
                Json::Obj(vec![
                    ("circuit".into(), Json::Str(bt.circuit.clone())),
                    ("nodes".into(), Json::Num(bt.nodes as f64)),
                    ("runs".into(), Json::Num(bt.runs as f64)),
                    ("pairs".into(), Json::Num(bt.pairs as f64)),
                    ("slots".into(), Json::Num(bt.slots as f64)),
                    ("per_run_ms".into(), Json::Num(bt.per_run_ms)),
                    ("batched_ms".into(), Json::Num(bt.batched_ms)),
                    ("speedup".into(), Json::Num(bt.speedup)),
                    ("compile_hits".into(), Json::Num(bt.compile_hits as f64)),
                    ("compile_misses".into(), Json::Num(bt.compile_misses as f64)),
                    (
                        "shard_points".into(),
                        Json::Arr(
                            bt.shard_points
                                .iter()
                                .map(|p| {
                                    Json::Obj(vec![
                                        ("shard_slots".into(), Json::Num(p.shard_slots as f64)),
                                        ("shards".into(), Json::Num(p.shards as f64)),
                                        ("elapsed_ms".into(), Json::Num(p.elapsed_ms)),
                                        ("identical".into(), Json::Bool(p.identical)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        if let Some(sw) = &self.scenario_sweep {
            fields.push((
                "scenario_sweep".into(),
                Json::Obj(vec![
                    ("circuit".into(), Json::Str(sw.circuit.clone())),
                    ("nodes".into(), Json::Num(sw.nodes as f64)),
                    ("pairs".into(), Json::Num(sw.pairs as f64)),
                    ("samples".into(), Json::Num(sw.samples as f64)),
                    ("seed".into(), Json::Num(sw.seed as f64)),
                    ("sigma".into(), Json::Num(sw.sigma)),
                    (
                        "capture_deadline_ps".into(),
                        Json::Num(sw.capture_deadline_ps),
                    ),
                    ("elapsed_ms".into(), Json::Num(sw.elapsed_ms)),
                    (
                        "points".into(),
                        Json::Arr(
                            sw.points
                                .iter()
                                .map(|p| {
                                    Json::Obj(vec![
                                        ("voltage".into(), Json::Num(p.voltage)),
                                        ("samples".into(), Json::Num(p.samples as f64)),
                                        ("failures".into(), Json::Num(p.failures as f64)),
                                        ("p_fail".into(), Json::Num(p.p_fail)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        if let Some(sweep) = &self.activity_sweep {
            fields.push((
                "activity_sweep".into(),
                Json::Obj(vec![
                    ("circuit".into(), Json::Str(sweep.circuit.clone())),
                    ("nodes".into(), Json::Num(sweep.nodes as f64)),
                    ("pairs".into(), Json::Num(sweep.pairs as f64)),
                    ("slots".into(), Json::Num(sweep.slots as f64)),
                    (
                        "points".into(),
                        Json::Arr(
                            sweep
                                .points
                                .iter()
                                .map(|p| {
                                    Json::Obj(vec![
                                        ("activity_factor".into(), Json::Num(p.activity_factor)),
                                        ("gated_ms".into(), Json::Num(p.gated_ms)),
                                        ("ungated_ms".into(), Json::Num(p.ungated_ms)),
                                        ("speedup".into(), Json::Num(p.speedup)),
                                        (
                                            "gates_skipped_quiet".into(),
                                            Json::Num(p.gates_skipped_quiet as f64),
                                        ),
                                        ("gate_tasks".into(), Json::Num(p.gate_tasks as f64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        Json::Obj(fields)
    }

    /// Deserializes (and thereby validates) a report document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first missing or mistyped
    /// field, or an unsupported schema tag.
    pub fn from_json(value: &Json) -> Result<PerfReport, JsonError> {
        let fail = |message: &str| JsonError {
            offset: 0,
            message: message.to_owned(),
        };
        let schema = value
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing schema tag"))?;
        if schema != PERF_SCHEMA {
            return Err(fail(&format!("unsupported schema '{schema}'")));
        }
        let env = value
            .get("environment")
            .ok_or_else(|| fail("missing environment block"))?;
        let req_f64 = |obj: &Json, key: &str| {
            obj.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| fail(&format!("missing/invalid field '{key}'")))
        };
        let req_u64 = |obj: &Json, key: &str| {
            obj.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| fail(&format!("missing/invalid field '{key}'")))
        };
        let req_str = |obj: &Json, key: &str| {
            obj.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| fail(&format!("missing/invalid field '{key}'")))
        };
        let mut circuits = Vec::new();
        for c in value
            .get("circuits")
            .and_then(Json::as_arr)
            .ok_or_else(|| fail("missing circuits array"))?
        {
            circuits.push(CircuitPerf {
                name: req_str(c, "name")?,
                nodes: req_u64(c, "nodes")?,
                levels: req_u64(c, "levels")?,
                pairs: req_u64(c, "pairs")?,
                slots: req_u64(c, "slots")?,
                ed_elapsed_ms: req_f64(c, "ed_elapsed_ms")?,
                ed_meps: req_f64(c, "ed_meps")?,
                engine_elapsed_ms: req_f64(c, "engine_elapsed_ms")?,
                engine_meps: req_f64(c, "engine_meps")?,
                speedup_vs_event_driven: req_f64(c, "speedup_vs_event_driven")?,
                engine_profile: Profile::from_json(
                    c.get("engine_profile")
                        .ok_or_else(|| fail("missing engine_profile"))?,
                )?,
                ed_profile: Profile::from_json(
                    c.get("ed_profile")
                        .ok_or_else(|| fail("missing ed_profile"))?,
                )?,
            });
        }
        let thread_scaling = match value.get("thread_scaling") {
            None | Some(Json::Null) => None,
            Some(ts) => {
                let mut points = Vec::new();
                for p in ts
                    .get("points")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| fail("missing thread_scaling points array"))?
                {
                    points.push(ScalingPoint {
                        threads: req_u64(p, "threads")?,
                        elapsed_ms: req_f64(p, "elapsed_ms")?,
                        speedup_vs_single: req_f64(p, "speedup_vs_single")?,
                    });
                }
                Some(ThreadScaling {
                    circuit: req_str(ts, "circuit")?,
                    nodes: req_u64(ts, "nodes")?,
                    pairs: req_u64(ts, "pairs")?,
                    slots: req_u64(ts, "slots")?,
                    prior_engine_elapsed_ms: ts
                        .get("prior_engine_elapsed_ms")
                        .and_then(Json::as_f64),
                    points,
                })
            }
        };
        let lane_scaling = match value.get("lane_scaling") {
            None | Some(Json::Null) => None,
            Some(ls) => {
                let mut points = Vec::new();
                for p in ls
                    .get("points")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| fail("missing lane_scaling points array"))?
                {
                    points.push(LanePoint {
                        lanes: req_u64(p, "lanes")?,
                        elapsed_ms: req_f64(p, "elapsed_ms")?,
                        speedup_vs_scalar: req_f64(p, "speedup_vs_scalar")?,
                    });
                }
                Some(LaneScaling {
                    circuit: req_str(ls, "circuit")?,
                    nodes: req_u64(ls, "nodes")?,
                    pairs: req_u64(ls, "pairs")?,
                    slots: req_u64(ls, "slots")?,
                    points,
                })
            }
        };
        let batch_throughput = match value.get("batch_throughput") {
            None | Some(Json::Null) => None,
            Some(bt) => {
                let mut shard_points = Vec::new();
                for p in bt
                    .get("shard_points")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| fail("missing batch_throughput shard_points array"))?
                {
                    shard_points.push(ShardPoint {
                        shard_slots: req_u64(p, "shard_slots")?,
                        shards: req_u64(p, "shards")?,
                        elapsed_ms: req_f64(p, "elapsed_ms")?,
                        identical: p
                            .get("identical")
                            .and_then(Json::as_bool)
                            .ok_or_else(|| fail("missing/invalid field 'identical'"))?,
                    });
                }
                Some(BatchThroughput {
                    circuit: req_str(bt, "circuit")?,
                    nodes: req_u64(bt, "nodes")?,
                    runs: req_u64(bt, "runs")?,
                    pairs: req_u64(bt, "pairs")?,
                    slots: req_u64(bt, "slots")?,
                    per_run_ms: req_f64(bt, "per_run_ms")?,
                    batched_ms: req_f64(bt, "batched_ms")?,
                    speedup: req_f64(bt, "speedup")?,
                    compile_hits: req_u64(bt, "compile_hits")?,
                    compile_misses: req_u64(bt, "compile_misses")?,
                    shard_points,
                })
            }
        };
        let scenario_sweep = match value.get("scenario_sweep") {
            None | Some(Json::Null) => None,
            Some(sw) => {
                let mut points = Vec::new();
                for p in sw
                    .get("points")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| fail("missing scenario_sweep points array"))?
                {
                    points.push(ScenarioPoint {
                        voltage: req_f64(p, "voltage")?,
                        samples: req_u64(p, "samples")?,
                        failures: req_u64(p, "failures")?,
                        p_fail: req_f64(p, "p_fail")?,
                    });
                }
                Some(ScenarioSweep {
                    circuit: req_str(sw, "circuit")?,
                    nodes: req_u64(sw, "nodes")?,
                    pairs: req_u64(sw, "pairs")?,
                    samples: req_u64(sw, "samples")?,
                    seed: req_u64(sw, "seed")?,
                    sigma: req_f64(sw, "sigma")?,
                    capture_deadline_ps: req_f64(sw, "capture_deadline_ps")?,
                    elapsed_ms: req_f64(sw, "elapsed_ms")?,
                    points,
                })
            }
        };
        let activity_sweep = match value.get("activity_sweep") {
            None | Some(Json::Null) => None,
            Some(sweep) => {
                let mut points = Vec::new();
                for p in sweep
                    .get("points")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| fail("missing activity_sweep points array"))?
                {
                    points.push(ActivityPoint {
                        activity_factor: req_f64(p, "activity_factor")?,
                        gated_ms: req_f64(p, "gated_ms")?,
                        ungated_ms: req_f64(p, "ungated_ms")?,
                        speedup: req_f64(p, "speedup")?,
                        gates_skipped_quiet: req_u64(p, "gates_skipped_quiet")?,
                        gate_tasks: req_u64(p, "gate_tasks")?,
                    });
                }
                Some(ActivitySweep {
                    circuit: req_str(sweep, "circuit")?,
                    nodes: req_u64(sweep, "nodes")?,
                    pairs: req_u64(sweep, "pairs")?,
                    slots: req_u64(sweep, "slots")?,
                    points,
                })
            }
        };
        Ok(PerfReport {
            scale: req_f64(env, "scale")?,
            pairs_cap: req_u64(env, "pairs_cap")?,
            threads: req_u64(env, "threads")?,
            arch: req_str(env, "arch")?,
            os: req_str(env, "os")?,
            circuits,
            thread_scaling,
            activity_sweep,
            lane_scaling,
            batch_throughput,
            scenario_sweep,
        })
    }

    /// Parses and validates a serialized report, returning a short
    /// description of the first problem found.
    ///
    /// # Errors
    ///
    /// Returns the parse or schema error rendered as a string.
    pub fn validate(text: &str) -> Result<PerfReport, String> {
        let value = Json::parse(text).map_err(|e| e.to_string())?;
        PerfReport::from_json(&value).map_err(|e| e.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_core::Metrics;

    fn sample() -> PerfReport {
        let m = Metrics::new("engine");
        m.time("engine/run", || ());
        m.counter("engine.kernel_evals").add(99);
        let engine_profile = m.snapshot();
        let e = Metrics::new("event_driven");
        e.time("ed/simulate", || ());
        e.set_gauge("ed.events_per_sec", 1.25e6);
        let ed_profile = e.snapshot();
        PerfReport {
            scale: 0.01,
            pairs_cap: 24,
            threads: 8,
            arch: "x86_64".into(),
            os: "linux".into(),
            circuits: vec![CircuitPerf {
                name: "c17".into(),
                nodes: 17,
                levels: 4,
                pairs: 8,
                slots: 8,
                ed_elapsed_ms: 1.5,
                ed_meps: 0.09,
                engine_elapsed_ms: 0.5,
                engine_meps: 0.27,
                speedup_vs_event_driven: 3.0,
                engine_profile,
                ed_profile,
            }],
            thread_scaling: Some(ThreadScaling {
                circuit: "c17".into(),
                nodes: 17,
                pairs: 8,
                slots: 8,
                prior_engine_elapsed_ms: Some(0.7),
                points: vec![
                    ScalingPoint {
                        threads: 1,
                        elapsed_ms: 0.6,
                        speedup_vs_single: 1.0,
                    },
                    ScalingPoint {
                        threads: 4,
                        elapsed_ms: 0.2,
                        speedup_vs_single: 3.0,
                    },
                ],
            }),
            lane_scaling: Some(LaneScaling {
                circuit: "c17".into(),
                nodes: 17,
                pairs: 8,
                slots: 8,
                points: vec![
                    LanePoint {
                        lanes: 1,
                        elapsed_ms: 0.6,
                        speedup_vs_scalar: 1.0,
                    },
                    LanePoint {
                        lanes: 8,
                        elapsed_ms: 0.3,
                        speedup_vs_scalar: 2.0,
                    },
                ],
            }),
            batch_throughput: Some(BatchThroughput {
                circuit: "c17".into(),
                nodes: 17,
                runs: 64,
                pairs: 8,
                slots: 8,
                per_run_ms: 30.0,
                batched_ms: 6.0,
                speedup: 5.0,
                compile_hits: 63,
                compile_misses: 1,
                shard_points: vec![
                    ShardPoint {
                        shard_slots: 0,
                        shards: 3,
                        elapsed_ms: 0.9,
                        identical: true,
                    },
                    ShardPoint {
                        shard_slots: 3,
                        shards: 3,
                        elapsed_ms: 1.0,
                        identical: true,
                    },
                ],
            }),
            scenario_sweep: Some(ScenarioSweep {
                circuit: "c17".into(),
                nodes: 17,
                pairs: 8,
                samples: 16,
                seed: 7,
                sigma: 0.05,
                capture_deadline_ps: 42.5,
                elapsed_ms: 1.2,
                points: vec![
                    ScenarioPoint {
                        voltage: 0.6,
                        samples: 128,
                        failures: 96,
                        p_fail: 0.75,
                    },
                    ScenarioPoint {
                        voltage: 0.9,
                        samples: 128,
                        failures: 0,
                        p_fail: 0.0,
                    },
                ],
            }),
            activity_sweep: Some(ActivitySweep {
                circuit: "c17".into(),
                nodes: 17,
                pairs: 8,
                slots: 8,
                points: vec![
                    ActivityPoint {
                        activity_factor: 0.1,
                        gated_ms: 0.2,
                        ungated_ms: 0.5,
                        speedup: 2.5,
                        gates_skipped_quiet: 40,
                        gate_tasks: 48,
                    },
                    ActivityPoint {
                        activity_factor: 1.0,
                        gated_ms: 0.5,
                        ungated_ms: 0.5,
                        speedup: 1.0,
                        gates_skipped_quiet: 0,
                        gate_tasks: 48,
                    },
                ],
            }),
        }
    }

    #[test]
    fn schema_round_trip_is_identity() {
        let report = sample();
        let text = report.to_json().to_string_pretty();
        let back = PerfReport::validate(&text).expect("valid document");
        assert_eq!(back, report);
    }

    #[test]
    fn thread_scaling_is_optional() {
        // Reports predating the pooled engine have no thread_scaling
        // section and must keep validating.
        let mut report = sample();
        report.thread_scaling = None;
        let text = report.to_json().to_string_pretty();
        let back = PerfReport::validate(&text).expect("valid without thread_scaling");
        assert_eq!(back, report);
        // An unknown prior baseline serializes as null and survives.
        let mut report = sample();
        report
            .thread_scaling
            .as_mut()
            .unwrap()
            .prior_engine_elapsed_ms = None;
        let back = PerfReport::validate(&report.to_json().to_string_pretty()).expect("valid");
        assert_eq!(back, report);
    }

    #[test]
    fn activity_sweep_is_optional() {
        // Reports predating the activity-gated engine have no
        // activity_sweep section and must keep validating.
        let mut report = sample();
        report.activity_sweep = None;
        let text = report.to_json().to_string_pretty();
        let back = PerfReport::validate(&text).expect("valid without activity_sweep");
        assert_eq!(back, report);
        // A corrupt section is rejected with a pointed message.
        let mut v = sample().to_json();
        if let Json::Obj(fields) = &mut v {
            if let Some((_, Json::Obj(s))) = fields.iter_mut().find(|(k, _)| k == "activity_sweep")
            {
                s.retain(|(k, _)| k != "points");
            }
        }
        let err = PerfReport::validate(&v.to_string_pretty()).unwrap_err();
        assert!(err.contains("activity_sweep points"), "{err}");
    }

    #[test]
    fn lane_scaling_is_optional() {
        // Reports predating the lane-major engine have no lane_scaling
        // section and must keep validating.
        let mut report = sample();
        report.lane_scaling = None;
        let text = report.to_json().to_string_pretty();
        let back = PerfReport::validate(&text).expect("valid without lane_scaling");
        assert_eq!(back, report);
        // A corrupt section is rejected with a pointed message.
        let mut v = sample().to_json();
        if let Json::Obj(fields) = &mut v {
            if let Some((_, Json::Obj(s))) = fields.iter_mut().find(|(k, _)| k == "lane_scaling") {
                s.retain(|(k, _)| k != "points");
            }
        }
        let err = PerfReport::validate(&v.to_string_pretty()).unwrap_err();
        assert!(err.contains("lane_scaling points"), "{err}");
    }

    #[test]
    fn batch_throughput_is_optional() {
        // Reports predating the batch runner have no batch_throughput
        // section and must keep validating.
        let mut report = sample();
        report.batch_throughput = None;
        let text = report.to_json().to_string_pretty();
        let back = PerfReport::validate(&text).expect("valid without batch_throughput");
        assert_eq!(back, report);
        // A corrupt section is rejected with a pointed message.
        let mut v = sample().to_json();
        if let Json::Obj(fields) = &mut v {
            if let Some((_, Json::Obj(s))) =
                fields.iter_mut().find(|(k, _)| k == "batch_throughput")
            {
                s.retain(|(k, _)| k != "shard_points");
            }
        }
        let err = PerfReport::validate(&v.to_string_pretty()).unwrap_err();
        assert!(err.contains("batch_throughput shard_points"), "{err}");
    }

    #[test]
    fn scenario_sweep_is_optional() {
        // Reports predating the scenario engine have no scenario_sweep
        // section and must keep validating.
        let mut report = sample();
        report.scenario_sweep = None;
        let text = report.to_json().to_string_pretty();
        let back = PerfReport::validate(&text).expect("valid without scenario_sweep");
        assert_eq!(back, report);
        // A corrupt section is rejected with a pointed message.
        let mut v = sample().to_json();
        if let Json::Obj(fields) = &mut v {
            if let Some((_, Json::Obj(s))) = fields.iter_mut().find(|(k, _)| k == "scenario_sweep")
            {
                s.retain(|(k, _)| k != "points");
            }
        }
        let err = PerfReport::validate(&v.to_string_pretty()).unwrap_err();
        assert!(err.contains("scenario_sweep points"), "{err}");
    }

    #[test]
    fn validate_rejects_corrupt_documents() {
        assert!(PerfReport::validate("not json").is_err());
        assert!(PerfReport::validate("{}").is_err());
        let wrong_schema = r#"{"schema": "avfs-perf-report/999", "circuits": []}"#;
        assert!(PerfReport::validate(wrong_schema).is_err());
        // Drop a required field and the validator names it.
        let mut v = sample().to_json();
        if let Json::Obj(fields) = &mut v {
            if let Json::Arr(circuits) = &mut fields[2].1 {
                if let Json::Obj(c) = &mut circuits[0] {
                    c.retain(|(k, _)| k != "engine_meps");
                }
            }
        }
        let err = PerfReport::validate(&v.to_string_pretty()).unwrap_err();
        assert!(err.contains("engine_meps"), "{err}");
    }
}
