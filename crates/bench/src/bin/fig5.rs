//! Fig. 5 — polynomial approximation of the NOR2_X2 rising propagation
//! delay versus the (interpolated) electrical reference.
//!
//! Fits the order-`2·N` surface with `N = 3` and prints (a) the average /
//! maximum relative error over the 64 × 64 probe lattice — the paper
//! reports ≈ 0.38 % average and 2.41 % maximum — and (b) a contour table
//! of absolute delays for eyeballing the surface shape.
//!
//! ```text
//! cargo run --release -p avfs-bench --bin fig5 [-- --order 3 --cell NOR2_X2]
//! ```

use avfs_bench::Args;
use avfs_delay::characterize::{deviation_grid, fit_deviation_grid};
use avfs_delay::op::NormalizedPoint;
use avfs_delay::ParameterSpace;
use avfs_netlist::library::Polarity;
use avfs_netlist::CellLibrary;
use avfs_spice::{sweep::sweep_pin, SweepConfig, Technology};

fn main() {
    let args = Args::capture();
    if args.flag("--help") {
        println!("fig5: NOR2_X2 rising-delay surface vs reference");
        println!("  --cell <name>   cell type (default NOR2_X2)");
        println!("  --order <N>     per-variable order (default 3)");
        println!("  --probe <n>     probe lattice per axis (default 64)");
        return;
    }
    let cell_name: String = args.value("--cell").unwrap_or_else(|| "NOR2_X2".to_owned());
    let order: usize = args.value("--order").unwrap_or(3);
    let probe: usize = args.value("--probe").unwrap_or(64);

    let library = CellLibrary::nangate15_like();
    let tech = Technology::nm15();
    let sweep = SweepConfig::paper();
    let space = ParameterSpace::paper();
    let id = library.find(&cell_name).unwrap_or_else(|| {
        eprintln!("unknown cell `{cell_name}`");
        std::process::exit(2);
    });
    let cell = library.cell(id);

    // Rising transition of pin 0, as in the figure.
    let surface = sweep_pin(&tech, cell, 0, Polarity::Rise, &sweep).expect("sweep succeeds");
    let grid = deviation_grid(&surface, &space).expect("grid is valid");
    let fit = fit_deviation_grid(&grid, order, 4, probe).expect("fit succeeds");

    println!("# Fig. 5 — {cell_name} rising delay d^r, polynomial order 2N with N={order}");
    println!(
        "# probe {probe}x{probe}: avg abs error {:.3}% (paper ~0.38%), max {:.3}% (paper 2.41%)",
        100.0 * fit.stats.mean,
        100.0 * fit.stats.max
    );

    // Contour table: absolute delays at a coarse lattice, polynomial vs
    // reference, in ps. Reference = d_nom(c) · (1 + deviation).
    let nom_idx = surface
        .voltages
        .iter()
        .position(|&v| (v - space.nominal_vdd()).abs() < 1e-9)
        .expect("nominal on grid");
    println!("#\n# absolute rising delay [ps]: rows = V_DD, cols = C_load (poly / reference)");
    print!("{:>7}", "V\\C");
    let col_loads = [0.5, 2.0, 8.0, 32.0, 128.0];
    for c in col_loads {
        print!(" {c:>15.1}fF");
    }
    println!();
    for &v in &[0.55, 0.65, 0.8, 0.95, 1.1] {
        print!("{v:>6.2}V");
        for &c in &col_loads {
            let p = NormalizedPoint {
                v: space.phi_v().apply(v),
                c: space.phi_c().apply(c),
            };
            // Reference: bilinear on the deviation grid, scaled by the
            // nominal curve at this load.
            let d_nom = nominal_at(&surface, nom_idx, c);
            let reference = d_nom * (1.0 + grid.sample(p.v, p.c));
            let predicted = d_nom * (1.0 + fit.poly.eval(p));
            print!(" {predicted:>8.2}/{reference:>8.2}");
        }
        println!();
    }
}

/// Nominal-voltage delay at load `c` by log-linear interpolation along the
/// sweep's load axis.
fn nominal_at(surface: &avfs_spice::DelaySurface, nom_idx: usize, c: f64) -> f64 {
    let loads = &surface.loads_ff;
    let x = c.log2();
    let mut i = 0;
    while i + 2 < loads.len() && loads[i + 1].log2() < x {
        i += 1;
    }
    let (x0, x1) = (loads[i].log2(), loads[i + 1].log2());
    let t = ((x - x0) / (x1 - x0)).clamp(0.0, 1.0);
    surface.at(nom_idx, i) + t * (surface.at(nom_idx, i + 1) - surface.at(nom_idx, i))
}
