//! activity_sweep — speedup of activity-gated execution as a function of
//! the stimuli activity factor.
//!
//! Builds pattern sets whose capture flips each input with probability
//! `a` (the activity factor, see [`avfs_bench::activity_patterns`]), then
//! A/B-runs the engine with the quiet-cell fast path on and off on
//! identical inputs, asserting the gating invariant (results bit-for-bit
//! identical) at every point and printing the speedup table. `--smoke` is
//! the CI gate: a small adder, three factors spanning quiescent to fully
//! toggling, identity enforced at two worker counts, fast enough for
//! every commit.
//!
//! ```text
//! cargo run --release -p avfs-bench --bin activity_sweep [-- --scale 0.01 --pairs 24]
//! cargo run --release -p avfs-bench --bin activity_sweep -- --smoke
//! ```

use avfs_bench::{activity_patterns, characterize_used, measure_activity_point, Args};
use avfs_circuits::{ripple_carry_adder, PAPER_PROFILES};
use avfs_core::Engine;
use avfs_netlist::CellLibrary;
use std::sync::Arc;

/// Default sweep: near-quiescent through fully toggling stimuli.
const FACTORS: [f64; 6] = [0.01, 0.05, 0.1, 0.2, 0.5, 1.0];

fn main() {
    let args = Args::capture();
    if args.flag("--help") {
        println!("activity_sweep: activity-gating speedup sweep with identity checks");
        println!("  --scale <f>    circuit scale factor (default 0.01 of paper node counts)");
        println!("  --pairs <n>    cap on pattern pairs (default 24)");
        println!("  --threads <n>  engine worker threads (0 = auto, the default)");
        println!("  --smoke        CI mode: small adder, factors 0/0.5/1, no table");
        return;
    }
    let library = CellLibrary::nangate15_like();

    if args.flag("--smoke") {
        let netlist = Arc::new(ripple_carry_adder(32, &library).expect("adder builds"));
        let chars = characterize_used(&[netlist.as_ref()], &library, 2);
        let annotation = Arc::new(chars.annotate(&netlist).expect("annotation"));
        let engine = Engine::new(
            Arc::clone(&netlist),
            annotation,
            Arc::new(chars.model().clone()),
        )
        .expect("engine builds");
        for &factor in &[0.0, 0.5, 1.0] {
            let patterns = activity_patterns(netlist.inputs().len(), 16, factor, 0xAC71_0001);
            for threads in [1, 2] {
                let p = measure_activity_point(&engine, &patterns, factor, threads);
                if factor == 0.0 {
                    assert_eq!(
                        p.gates_skipped_quiet, p.gate_tasks,
                        "fully quiescent stimuli must skip every gate task"
                    );
                }
            }
        }
        println!("activity_sweep --smoke: gated and ungated runs identical, OK");
        return;
    }

    let scale: f64 = args.value("--scale").unwrap_or(0.01);
    let pairs_cap: usize = args.value("--pairs").unwrap_or(24);
    let threads: usize = args.value("--threads").unwrap_or(0);
    let profile = PAPER_PROFILES
        .iter()
        .max_by_key(|p| p.nodes)
        .expect("paper profiles exist");
    eprintln!(
        "activity_sweep: synthesizing {} at scale {scale} ...",
        profile.name
    );
    let netlist = Arc::new(
        profile
            .synthesize(scale, &library)
            .expect("synthesis succeeds"),
    );
    let chars = characterize_used(&[netlist.as_ref()], &library, 3);
    let annotation = Arc::new(chars.annotate(&netlist).expect("all cells characterized"));
    let engine = Engine::new(
        Arc::clone(&netlist),
        annotation,
        Arc::new(chars.model().clone()),
    )
    .expect("engine builds");
    let pairs = profile.test_pairs.min(pairs_cap);
    println!(
        "activity_sweep: {} ({} nodes, {} pairs)",
        profile.name,
        netlist.num_nodes(),
        pairs
    );
    for factor in FACTORS {
        let patterns = activity_patterns(
            netlist.inputs().len(),
            pairs,
            factor,
            0xAC71_0000 ^ netlist.num_nodes() as u64,
        );
        let p = measure_activity_point(&engine, &patterns, factor, threads);
        println!(
            "  a={factor:<5} gated {:>9.1} ms  ungated {:>9.1} ms  speedup {:>5.2}x  \
             skipped {}/{} tasks",
            p.gated_ms, p.ungated_ms, p.speedup, p.gates_skipped_quiet, p.gate_tasks
        );
    }
}
