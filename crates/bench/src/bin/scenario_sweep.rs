//! scenario_sweep — failure probability vs supply voltage under droop
//! schedules with Monte Carlo process variation (DESIGN.md §15).
//!
//! One launch per invocation: every pattern pair is replayed under a
//! three-segment voltage-droop [`Schedule`] per nominal supply, expanded
//! into `--samples` Monte Carlo dice, and reduced into the
//! failure-probability-vs-voltage curve against a capture deadline
//! derived from the nominal-supply static run (latest arrival × 1.05 —
//! the margin a capture flop would give the paper's Table II arrivals).
//! In full mode the resulting `scenario_sweep` section is merged into an
//! existing `BENCH_core.json` (validated before and after), so the
//! committed report grows the curve without re-measuring the other
//! sections.
//!
//! `--smoke` is the CI gate, asserting the scenario engine's two hard
//! invariants on a small adder:
//!   1. a constant (single-segment) schedule is **bit-identical** to the
//!      static run at 1 and at auto threads, and
//!   2. Monte Carlo runs **replay exactly** from their seed (and a
//!      different seed draws different dice), with multi-segment droop
//!      runs bit-identical across thread counts.
//!
//! ```text
//! cargo run --release -p avfs-bench --bin scenario_sweep [-- --scale 0.01 --samples 16]
//! cargo run -p avfs-bench --bin scenario_sweep -- --smoke
//! ```

use avfs_atpg::PatternSet;
use avfs_bench::perf::{PerfReport, ScenarioPoint, ScenarioSweep};
use avfs_bench::{characterize_used, Args};
use avfs_circuits::{ripple_carry_adder, PAPER_PROFILES};
use avfs_core::scenario::{cross_schedules, MonteCarlo, Schedule};
use avfs_core::{cross, Engine, SimOptions, VariationConfig};
use avfs_netlist::CellLibrary;
use std::sync::Arc;

fn main() {
    let args = Args::capture();
    if args.flag("--help") {
        println!("scenario_sweep: droop-schedule Monte Carlo failure-probability curve");
        println!("  --scale <f>    circuit scale factor (default 0.01 of paper node counts)");
        println!("  --pairs <n>    pattern pairs per voltage point (default 8)");
        println!("  --samples <n>  Monte Carlo dice per scenario (default 16)");
        println!("  --sigma <f>    relative sigma of the delay derate (default 0.05)");
        println!("  --seed <n>     variation seed (default 3901)");
        println!("  --threads <n>  worker threads (0 = auto, the default)");
        println!("  --out <path>   report to merge into (default BENCH_core.json)");
        println!("  --smoke        CI mode: identity + seed-replay gates, no file");
        return;
    }
    let library = CellLibrary::nangate15_like();
    let threads = SimOptions {
        threads: args.value("--threads").unwrap_or(0),
        ..SimOptions::default()
    }
    .resolved_threads();

    if args.flag("--smoke") {
        let netlist = Arc::new(ripple_carry_adder(16, &library).expect("adder builds"));
        let chars = characterize_used(&[netlist.as_ref()], &library, 2);
        let annotation = Arc::new(chars.annotate(&netlist).expect("annotates"));
        let model = Arc::new(chars.model().clone());
        let engine = Engine::new(Arc::clone(&netlist), annotation, model).expect("engine builds");
        let patterns = PatternSet::lfsr(netlist.inputs().len(), 4, 7);
        let voltages = [0.7, 0.9];

        // Gate 1: constant-schedule ≡ static identity, scalar and pooled.
        let constants: Vec<Schedule> = voltages.iter().map(|&v| Schedule::constant(v)).collect();
        let scenarios = cross_schedules(patterns.len(), &constants);
        for threads in [1, threads] {
            let opts = SimOptions {
                threads,
                ..SimOptions::default()
            };
            let fixed = engine
                .run(&patterns, &cross(patterns.len(), &voltages), &opts)
                .expect("static run");
            let scheduled = engine
                .run_scenarios(&patterns, &scenarios, None, None, &opts)
                .expect("scheduled run");
            assert_eq!(
                scheduled.slots, fixed.slots,
                "constant-schedule run must be bit-identical to the static run (threads={threads})"
            );
        }

        // Gate 2: droop schedules are thread-invariant, and Monte Carlo
        // replays exactly from the seed.
        let droops: Vec<Schedule> = voltages
            .iter()
            .map(|&v| Schedule::droop(v, 0.08, 30.0, 110.0))
            .collect();
        let droop_scenarios = cross_schedules(patterns.len(), &droops);
        let mc = |seed: u64| MonteCarlo {
            samples: 3,
            variation: VariationConfig {
                sigma: 0.05,
                max_deviation: 0.2,
                seed,
            },
        };
        let run_mc = |threads: usize, seed: u64| {
            engine
                .run_scenarios(
                    &patterns,
                    &droop_scenarios,
                    Some(&mc(seed)),
                    Some(400.0),
                    &SimOptions {
                        threads,
                        ..SimOptions::default()
                    },
                )
                .expect("mc run")
        };
        let reference = run_mc(1, 11);
        let pooled = run_mc(threads, 11);
        assert_eq!(
            pooled.slots, reference.slots,
            "droop + MC runs must be bit-identical across thread counts"
        );
        assert_eq!(pooled.scenario, reference.scenario);
        let replay = run_mc(1, 11);
        assert_eq!(
            replay.slots, reference.slots,
            "same seed must replay exactly"
        );
        let other = run_mc(1, 12);
        assert_ne!(
            other
                .slots
                .iter()
                .map(|s| s.latest_output_transition_ps)
                .collect::<Vec<_>>(),
            reference
                .slots
                .iter()
                .map(|s| s.latest_output_transition_ps)
                .collect::<Vec<_>>(),
            "a different seed must draw different dice"
        );
        println!(
            "scenario_sweep --smoke: constant-schedule == static (threads 1 and {threads}), \
             droop+MC thread-invariant, seed replay exact, OK"
        );
        return;
    }

    let scale: f64 = args.value("--scale").unwrap_or(0.01);
    let pairs: usize = args.value("--pairs").unwrap_or(8);
    let samples: usize = args.value("--samples").unwrap_or(16);
    let sigma: f64 = args.value("--sigma").unwrap_or(0.05);
    let seed: u64 = args.value("--seed").unwrap_or(3901);
    let out: String = args
        .value("--out")
        .unwrap_or_else(|| "BENCH_core.json".into());
    let profile = PAPER_PROFILES
        .iter()
        .max_by_key(|p| p.nodes)
        .expect("paper profiles exist");
    eprintln!(
        "scenario_sweep: synthesizing {} at scale {scale} ...",
        profile.name
    );
    let netlist = Arc::new(
        profile
            .synthesize(scale, &library)
            .expect("synthesis succeeds"),
    );
    let chars = characterize_used(&[netlist.as_ref()], &library, 3);
    let annotation = Arc::new(chars.annotate(&netlist).expect("annotates"));
    let model = Arc::new(chars.model().clone());
    let engine = Engine::new(Arc::clone(&netlist), annotation, model).expect("engine builds");
    let patterns = PatternSet::lfsr(netlist.inputs().len(), pairs, 0x5CE0 ^ profile.nodes as u64);
    let opts = SimOptions {
        threads,
        ..SimOptions::default()
    };

    // The capture deadline: 5% margin over the nominal-supply static run.
    let nominal_v = 0.8;
    let nominal = engine
        .run(&patterns, &cross(patterns.len(), &[nominal_v]), &opts)
        .expect("nominal run");
    let deadline = nominal
        .latest_arrival_at(nominal_v)
        .expect("outputs toggle at nominal")
        * 1.05;

    // One droop schedule per nominal supply: a 50 mV dip across the
    // window where the nominal run's critical transitions land.
    let voltages = [0.6, 0.65, 0.7, 0.75, 0.8, 0.9];
    let schedules: Vec<Schedule> = voltages
        .iter()
        .map(|&v| Schedule::droop(v, 0.05, deadline * 0.25, deadline * 0.6))
        .collect();
    let scenarios = cross_schedules(patterns.len(), &schedules);
    let mc = MonteCarlo {
        samples,
        variation: VariationConfig {
            sigma,
            max_deviation: 4.0 * sigma,
            seed,
        },
    };
    eprintln!(
        "scenario_sweep: {} scenarios x {} dice = {} slots ...",
        scenarios.len(),
        samples,
        scenarios.len() * samples
    );
    let run = engine
        .run_scenarios(&patterns, &scenarios, Some(&mc), Some(deadline), &opts)
        .expect("sweep run");
    let summary = run.scenario.as_ref().expect("scenario summary");

    let sweep = ScenarioSweep {
        circuit: profile.name.to_owned(),
        nodes: netlist.num_nodes() as u64,
        pairs: patterns.len() as u64,
        samples: samples as u64,
        seed,
        sigma,
        capture_deadline_ps: deadline,
        elapsed_ms: run.elapsed.as_secs_f64() * 1e3,
        points: summary
            .points
            .iter()
            .map(|p| ScenarioPoint {
                voltage: p.voltage,
                samples: p.samples as u64,
                failures: p.failures as u64,
                p_fail: p.p_fail,
            })
            .collect(),
    };

    println!(
        "scenario_sweep: {} ({} nodes, {} pairs, {} dice/scenario, sigma {}, deadline {:.1} ps)",
        sweep.circuit, sweep.nodes, sweep.pairs, sweep.samples, sweep.sigma, deadline
    );
    println!("  V_nominal   samples   failures   p_fail");
    for p in &sweep.points {
        println!(
            "  {:>7.2} V  {:>8}  {:>9}   {:.3}",
            p.voltage, p.samples, p.failures, p.p_fail
        );
    }

    // Merge into the committed report: validate, graft, re-validate.
    let text = std::fs::read_to_string(&out).unwrap_or_else(|e| {
        panic!("cannot read {out} ({e}); run perf_report first to create the base report")
    });
    let mut report = PerfReport::validate(&text).expect("existing report validates");
    report.scenario_sweep = Some(sweep);
    let merged = report.to_json().to_string_pretty();
    PerfReport::validate(&merged).expect("merged report validates");
    std::fs::write(&out, &merged).expect("report written");
    println!("  merged scenario_sweep section into {out}");
}
