//! lane_scaling — lane-width scaling check for the lane-major engine.
//!
//! Re-runs one circuit at increasing lane widths on identical inputs,
//! asserts the lane-major engine's hard invariant (results bit-for-bit
//! identical to the scalar slot-major path, lane width 1, at every
//! width) and prints the wall-clock scaling table. `--smoke` is the CI
//! gate: a small adder, lanes 1 vs 4 vs 8, identity enforced, fast
//! enough for every commit.
//!
//! Unlike `thread_scaling`, the payoff here is per-core: wider lanes
//! amortize instruction overhead over contiguous lane runs (one Horner
//! kernel batch per level, word-wide quiet-bit scans, one claim
//! `fetch_or` per lane run), so speedups show up even on a single CPU.
//!
//! ```text
//! cargo run --release -p avfs-bench --bin lane_scaling [-- --scale 0.01 --pairs 24]
//! cargo run --release -p avfs-bench --bin lane_scaling -- --smoke
//! ```

use avfs_atpg::PatternSet;
use avfs_bench::{activity_patterns, characterize_used, Args};
use avfs_circuits::{ripple_carry_adder, PAPER_PROFILES};
use avfs_core::{slots, Engine, SimOptions, SimRun};
use avfs_delay::{CharacterizedLibrary, TimingAnnotation};
use avfs_netlist::{CellLibrary, Netlist};
use std::sync::Arc;

fn main() {
    let args = Args::capture();
    if args.flag("--help") {
        println!("lane_scaling: lane-width scaling sweep with identity checks");
        println!("  --scale <f>     circuit scale factor (default 0.01 of paper node counts)");
        println!("  --pairs <n>     cap on pattern pairs (default 24)");
        println!("  --activity <f>  stimuli activity factor (default: paper-style random pairs)");
        println!("  --smoke         CI mode: small adder, lanes 1 vs 4 vs 8, no table");
        return;
    }
    let library = CellLibrary::nangate15_like();

    if args.flag("--smoke") {
        let netlist = Arc::new(ripple_carry_adder(32, &library).expect("adder builds"));
        let chars = characterize_used(&[netlist.as_ref()], &library, 2);
        let annotation = Arc::new(chars.annotate(&netlist).expect("annotation"));
        let patterns = PatternSet::lfsr(netlist.inputs().len(), 16, 7);
        sweep(
            "rca32",
            &netlist,
            &annotation,
            &chars,
            &patterns,
            &[1, 4, 8],
        );
        println!("lane_scaling --smoke: identical results at lanes 1, 4 and 8, OK");
        return;
    }

    let scale: f64 = args.value("--scale").unwrap_or(0.01);
    let pairs_cap: usize = args.value("--pairs").unwrap_or(24);
    let profile = PAPER_PROFILES
        .iter()
        .max_by_key(|p| p.nodes)
        .expect("paper profiles exist");
    eprintln!(
        "lane_scaling: synthesizing {} at scale {scale} ...",
        profile.name
    );
    let netlist = Arc::new(
        profile
            .synthesize(scale, &library)
            .expect("synthesis succeeds"),
    );
    let chars = characterize_used(&[netlist.as_ref()], &library, 3);
    let annotation = Arc::new(chars.annotate(&netlist).expect("all cells characterized"));
    let pairs = profile.test_pairs.min(pairs_cap);
    let seed = 0xA5F5_0000 ^ profile.nodes as u64;
    let patterns = match args.value::<f64>("--activity") {
        // Controlled-activity stimuli: each input toggles between launch
        // and capture with the given probability (the E9 methodology).
        Some(a) => activity_patterns(netlist.inputs().len(), pairs, a, seed),
        None => PatternSet::random(netlist.inputs().len(), pairs, seed),
    };
    sweep(
        profile.name,
        &netlist,
        &annotation,
        &chars,
        &patterns,
        &[1, 4, 8, 16],
    );
}

/// Runs the sweep, asserting identity against the first (scalar, lane
/// width 1) run and printing one line per point.
fn sweep(
    name: &str,
    netlist: &Arc<Netlist>,
    annotation: &Arc<TimingAnnotation>,
    chars: &CharacterizedLibrary,
    patterns: &PatternSet,
    widths: &[usize],
) {
    let engine = Engine::new(
        Arc::clone(netlist),
        Arc::clone(annotation),
        Arc::new(chars.model().clone()),
    )
    .expect("engine builds");
    let slot_list = slots::at_voltage(patterns.len(), 0.8);
    let mut reference: Option<SimRun> = None;
    let mut scalar_ms = 0.0;
    println!(
        "lane_scaling: {name} ({} nodes, {} slots)",
        netlist.num_nodes(),
        slot_list.len()
    );
    for &lanes in widths {
        let run = engine
            .run(
                patterns,
                &slot_list,
                &SimOptions {
                    lanes,
                    ..SimOptions::default()
                },
            )
            .expect("engine runs");
        let elapsed_ms = run.elapsed.as_secs_f64() * 1e3;
        match &reference {
            None => {
                scalar_ms = elapsed_ms;
                reference = Some(run);
            }
            Some(r) => {
                assert_eq!(
                    r.slots, run.slots,
                    "{name}: results diverge at lanes={lanes}"
                );
                assert_eq!(
                    r.diagnostics, run.diagnostics,
                    "{name}: diagnostics diverge at lanes={lanes}"
                );
            }
        }
        println!(
            "  lanes={lanes:<3} {elapsed_ms:>9.1} ms  ({:.2}x vs scalar)",
            scalar_ms / elapsed_ms.max(1e-9)
        );
    }
}
