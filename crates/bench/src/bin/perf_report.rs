//! perf_report — schema-versioned, machine-readable performance report.
//!
//! Where `table1` renders the paper's Table I for humans, this binary
//! captures the same comparison — serial event-driven baseline versus the
//! parallel polynomial engine on identical inputs — as a JSON document
//! (`avfs-perf-report/1`, default `BENCH_core.json`) with the phase-level
//! profiles ([`avfs_core::Profile`]) of both simulators embedded, so
//! regressions in any single phase (delay kernel, waveform merge, barrier)
//! are visible across commits, not just end-to-end runtimes.
//!
//! ```text
//! cargo run --release -p avfs-bench --bin perf_report [-- --scale 0.01 --pairs 24]
//! cargo run -p avfs-bench --bin perf_report -- --smoke   # CI: c17 only, validate, no file
//! ```

use avfs_atpg::timing_aware::{collect_pairs, generate_timing_aware};
use avfs_atpg::{k_longest_paths, PatternSet};
use avfs_bench::perf::{
    ActivitySweep, CircuitPerf, LanePoint, LaneScaling, PerfReport, ScalingPoint, ThreadScaling,
};
use avfs_bench::{
    activity_patterns, characterize_used, measure_activity_point, measure_batch_throughput, Args,
};
use avfs_circuits::{CircuitProfile, PAPER_PROFILES};
use avfs_core::{slots, Engine, EventDrivenSimulator, SimOptions, SimRun};
use avfs_delay::{CharacterizedLibrary, TimingAnnotation};
use avfs_netlist::{CellLibrary, Netlist, NetlistStats};
use std::sync::Arc;

fn main() {
    let args = Args::capture();
    if args.flag("--help") {
        println!("perf_report: machine-readable phase-level performance report");
        println!("  --scale <f>       circuit scale factor (default 0.01 of paper node counts)");
        println!("  --pairs <n>       cap on pattern pairs per design (default 24)");
        println!("  --order <N>       polynomial order (default 3)");
        println!("  --threads <n>     engine worker threads (0 = auto, the default)");
        println!("  --circuit <name>  limit to specific designs (repeatable)");
        println!("  --out <path>      output path (default BENCH_core.json)");
        println!("  --smoke           c17 only, validate the schema, write nothing");
        return;
    }
    let scale: f64 = args.value("--scale").unwrap_or(0.01);
    let pairs_cap: usize = args.value("--pairs").unwrap_or(24);
    let order: usize = args.value("--order").unwrap_or(3);
    let threads = SimOptions {
        threads: args.value("--threads").unwrap_or(0),
        ..SimOptions::default()
    }
    .resolved_threads();
    let out: String = args
        .value("--out")
        .unwrap_or_else(|| "BENCH_core.json".into());
    let library = CellLibrary::nangate15_like();

    let mut report = PerfReport {
        scale,
        pairs_cap: pairs_cap as u64,
        threads: threads as u64,
        arch: std::env::consts::ARCH.to_owned(),
        os: std::env::consts::OS.to_owned(),
        circuits: Vec::new(),
        thread_scaling: None,
        activity_sweep: None,
        lane_scaling: None,
        batch_throughput: None,
        scenario_sweep: None,
    };

    if args.flag("--smoke") {
        // CI gate: tiny circuit, full pipeline, schema validation, no file.
        let c17 = Arc::new(avfs_circuits::c17(&library).expect("c17 builds"));
        let chars = characterize_used(&[c17.as_ref()], &library, 2);
        let annotation = Arc::new(chars.annotate(&c17).expect("annotation"));
        let patterns = PatternSet::random(c17.inputs().len(), 4, 0xC17);
        report.circuits.push(measure(
            "c17",
            &c17,
            &annotation,
            &chars,
            &patterns,
            threads,
        ));
        report.thread_scaling = Some(scaling_sweep(
            "c17",
            &c17,
            &annotation,
            &chars,
            &patterns,
            &[1, 2],
            None,
        ));
        report.activity_sweep = Some(activity_sweep(
            "c17",
            &c17,
            &annotation,
            &chars,
            4,
            &[0.0, 1.0],
            threads,
        ));
        report.lane_scaling = Some(lane_sweep(
            "c17",
            &c17,
            &annotation,
            &chars,
            &patterns,
            &[1, 4],
            threads,
        ));
        report.batch_throughput = Some(measure_batch_throughput(
            "c17",
            &c17,
            &chars,
            &patterns,
            6,
            &SimOptions {
                threads,
                ..SimOptions::default()
            },
            &[0, 3],
            5,
        ));
        let text = report.to_json().to_string_pretty();
        let back = PerfReport::validate(&text).expect("schema validates");
        assert_eq!(back, report, "round trip is identity");
        println!(
            "perf_report --smoke: schema avfs-perf-report/1 OK ({} bytes)",
            text.len()
        );
        return;
    }

    let wanted = args.values("--circuit");
    let profiles: Vec<&CircuitProfile> = PAPER_PROFILES
        .iter()
        .filter(|p| wanted.is_empty() || wanted.iter().any(|w| w == p.name))
        .collect();
    eprintln!(
        "perf_report: synthesizing {} designs at scale {scale} ...",
        profiles.len()
    );
    let netlists: Vec<Arc<Netlist>> = profiles
        .iter()
        .map(|p| Arc::new(p.synthesize(scale, &library).expect("synthesis succeeds")))
        .collect();
    eprintln!("perf_report: characterizing used cells (order N={order}) ...");
    let refs: Vec<&Netlist> = netlists.iter().map(Arc::as_ref).collect();
    let chars = characterize_used(&refs, &library, order);

    for (profile, netlist) in profiles.iter().zip(&netlists) {
        let annotation = Arc::new(chars.annotate(netlist).expect("all cells characterized"));
        let patterns = build_patterns(netlist, &annotation, profile, pairs_cap);
        let entry = measure(
            profile.name,
            netlist,
            &annotation,
            &chars,
            &patterns,
            threads,
        );
        eprintln!(
            "perf_report: {:<10} engine {:>8.1} MEPS, {:>6.1}x vs event-driven",
            entry.name, entry.engine_meps, entry.speedup_vs_event_driven
        );
        report.circuits.push(entry);
    }

    // Worker-pool scaling sweep on the largest measured design, compared
    // (when possible) against the previously committed report at `out`.
    if let Some((profile, netlist)) = profiles
        .iter()
        .zip(&netlists)
        .max_by_key(|(_, n)| n.num_nodes())
    {
        let prior = std::fs::read_to_string(&out)
            .ok()
            .and_then(|t| PerfReport::validate(&t).ok())
            .and_then(|r| {
                r.circuits
                    .iter()
                    .find(|c| c.name == profile.name)
                    .map(|c| c.engine_elapsed_ms)
            });
        let annotation = Arc::new(chars.annotate(netlist).expect("all cells characterized"));
        let patterns = build_patterns(netlist, &annotation, profile, pairs_cap);
        eprintln!("perf_report: thread-scaling sweep on {} ...", profile.name);
        let sweep = scaling_sweep(
            profile.name,
            netlist,
            &annotation,
            &chars,
            &patterns,
            &[1, 2, 4, 8],
            prior,
        );
        for p in &sweep.points {
            eprintln!(
                "perf_report:   threads={:<2} {:>9.1} ms  ({:.2}x vs single)",
                p.threads, p.elapsed_ms, p.speedup_vs_single
            );
        }
        report.thread_scaling = Some(sweep);

        // Activity-gating sweep on the same design: gated vs ungated on
        // identical stimuli across activity factors, identity asserted at
        // every point.
        eprintln!("perf_report: activity sweep on {} ...", profile.name);
        let sweep = activity_sweep(
            profile.name,
            netlist,
            &annotation,
            &chars,
            pairs_cap.min(profile.test_pairs),
            &[0.01, 0.05, 0.1, 0.2, 0.5, 1.0],
            threads,
        );
        for p in &sweep.points {
            eprintln!(
                "perf_report:   a={:<5} gated {:>8.1} ms  ungated {:>8.1} ms  ({:.2}x, {}/{} skipped)",
                p.activity_factor, p.gated_ms, p.ungated_ms, p.speedup, p.gates_skipped_quiet, p.gate_tasks
            );
        }
        report.activity_sweep = Some(sweep);

        // Lane-width scaling sweep on the same design: the lane-major
        // layout at widths 1…16 on identical inputs, identity asserted
        // against the scalar point.
        eprintln!("perf_report: lane-scaling sweep on {} ...", profile.name);
        let sweep = lane_sweep(
            profile.name,
            netlist,
            &annotation,
            &chars,
            &patterns,
            &[1, 4, 8, 16],
            threads,
        );
        for p in &sweep.points {
            eprintln!(
                "perf_report:   lanes={:<3} {:>9.1} ms  ({:.2}x vs scalar)",
                p.lanes, p.elapsed_ms, p.speedup_vs_scalar
            );
        }
        report.lane_scaling = Some(sweep);

        // Compile-once / simulate-many A/B on the same design: a short
        // per-run workload repeated 64 times with a fresh `Engine::new`
        // per run versus one `BatchRunner` compile and a parked pool,
        // identity asserted run-for-run, plus a shard-size sweep against
        // the unsharded reference.
        eprintln!("perf_report: batch-throughput A/B on {} ...", profile.name);
        // Same workload shape as the `batch_throughput` binary's default:
        // short low-activity runs with a right-sized arena — the
        // incremental re-simulation loop that batching amortizes.
        let batch_patterns = activity_patterns(
            netlist.inputs().len(),
            2,
            0.1,
            0xBA7C_0000 ^ profile.nodes as u64,
        );
        let bt = measure_batch_throughput(
            profile.name,
            netlist,
            &chars,
            &batch_patterns,
            64,
            &SimOptions {
                threads,
                ..SimOptions::default()
            },
            &[0, 4, 7],
            3,
        );
        eprintln!(
            "perf_report:   {} runs: per-run {:>8.1} ms, batched {:>8.1} ms ({:.2}x, {} compile misses)",
            bt.runs, bt.per_run_ms, bt.batched_ms, bt.speedup, bt.compile_misses
        );
        report.batch_throughput = Some(bt);
    }

    let text = report.to_json().to_string_pretty();
    PerfReport::validate(&text).expect("emitted report validates");
    std::fs::write(&out, &text).expect("report written");
    println!(
        "perf_report: wrote {out} ({} circuits)",
        report.circuits.len()
    );
}

/// Runs the event-driven baseline and the profiled polynomial engine on
/// identical inputs and folds both into one report entry.
fn measure(
    name: &str,
    netlist: &Arc<Netlist>,
    annotation: &Arc<TimingAnnotation>,
    chars: &CharacterizedLibrary,
    patterns: &PatternSet,
    threads: usize,
) -> CircuitPerf {
    let stats = NetlistStats::of(netlist);
    let slot_list = slots::at_voltage(patterns.len(), 0.8);

    let ed = EventDrivenSimulator::new(Arc::clone(netlist), Arc::clone(annotation))
        .expect("positive delays from characterization");
    let ed_run = ed
        .run_profiled(patterns, &slot_list, false, true)
        .expect("baseline runs");

    let engine = Engine::new(
        Arc::clone(netlist),
        Arc::clone(annotation),
        Arc::new(chars.model().clone()),
    )
    .expect("engine builds");
    let opts = SimOptions {
        threads,
        profiling: true,
        ..SimOptions::default()
    };
    let run = engine
        .run(patterns, &slot_list, &opts)
        .expect("engine runs");
    eprint!("{}", run.summary());

    let take_profile = |r: &SimRun| r.profile.clone().expect("profiling was on");
    CircuitPerf {
        name: name.to_owned(),
        nodes: stats.nodes as u64,
        levels: stats.depth as u64,
        pairs: patterns.len() as u64,
        slots: slot_list.len() as u64,
        ed_elapsed_ms: ed_run.elapsed.as_secs_f64() * 1e3,
        ed_meps: ed_run.meps(),
        engine_elapsed_ms: run.elapsed.as_secs_f64() * 1e3,
        engine_meps: run.meps(),
        speedup_vs_event_driven: ed_run.elapsed.as_secs_f64() / run.elapsed.as_secs_f64().max(1e-9),
        engine_profile: take_profile(&run),
        ed_profile: take_profile(&ed_run),
    }
}

/// Re-runs the engine on identical inputs at each worker count of
/// `sweep`, asserting bit-for-bit identical results across counts (the
/// pooled engine's hard invariant) and reporting wall-clock speedups
/// against the sweep's own single-worker point.
fn scaling_sweep(
    name: &str,
    netlist: &Arc<Netlist>,
    annotation: &Arc<TimingAnnotation>,
    chars: &CharacterizedLibrary,
    patterns: &PatternSet,
    sweep: &[usize],
    prior_engine_elapsed_ms: Option<f64>,
) -> ThreadScaling {
    let engine = Engine::new(
        Arc::clone(netlist),
        Arc::clone(annotation),
        Arc::new(chars.model().clone()),
    )
    .expect("engine builds");
    let slot_list = slots::at_voltage(patterns.len(), 0.8);
    let mut reference: Option<SimRun> = None;
    let mut points = Vec::new();
    let mut single_ms = 0.0;
    for &threads in sweep {
        let run = engine
            .run(
                patterns,
                &slot_list,
                &SimOptions {
                    threads,
                    ..SimOptions::default()
                },
            )
            .expect("engine runs");
        let elapsed_ms = run.elapsed.as_secs_f64() * 1e3;
        match &reference {
            None => {
                single_ms = elapsed_ms;
                reference = Some(run);
            }
            Some(r) => {
                assert_eq!(
                    r.slots, run.slots,
                    "{name}: results diverge at threads={threads}"
                );
                assert_eq!(r.diagnostics, run.diagnostics);
            }
        }
        points.push(ScalingPoint {
            threads: threads as u64,
            elapsed_ms,
            speedup_vs_single: single_ms / elapsed_ms.max(1e-9),
        });
    }
    ThreadScaling {
        circuit: name.to_owned(),
        nodes: netlist.num_nodes() as u64,
        pairs: patterns.len() as u64,
        slots: slot_list.len() as u64,
        prior_engine_elapsed_ms,
        points,
    }
}

/// Re-runs the engine on identical inputs at each lane width of `sweep`,
/// asserting bit-for-bit identical results against the scalar (lane
/// width 1) point (the lane-major engine's hard invariant) and reporting
/// wall-clock speedups against it.
fn lane_sweep(
    name: &str,
    netlist: &Arc<Netlist>,
    annotation: &Arc<TimingAnnotation>,
    chars: &CharacterizedLibrary,
    patterns: &PatternSet,
    sweep: &[usize],
    threads: usize,
) -> LaneScaling {
    let engine = Engine::new(
        Arc::clone(netlist),
        Arc::clone(annotation),
        Arc::new(chars.model().clone()),
    )
    .expect("engine builds");
    let slot_list = slots::at_voltage(patterns.len(), 0.8);
    let mut reference: Option<SimRun> = None;
    let mut points = Vec::new();
    let mut scalar_ms = 0.0;
    for &lanes in sweep {
        let run = engine
            .run(
                patterns,
                &slot_list,
                &SimOptions {
                    threads,
                    lanes,
                    ..SimOptions::default()
                },
            )
            .expect("engine runs");
        let elapsed_ms = run.elapsed.as_secs_f64() * 1e3;
        match &reference {
            None => {
                scalar_ms = elapsed_ms;
                reference = Some(run);
            }
            Some(r) => {
                assert_eq!(
                    r.slots, run.slots,
                    "{name}: results diverge at lanes={lanes}"
                );
                assert_eq!(r.diagnostics, run.diagnostics);
            }
        }
        points.push(LanePoint {
            lanes: lanes as u64,
            elapsed_ms,
            speedup_vs_scalar: scalar_ms / elapsed_ms.max(1e-9),
        });
    }
    LaneScaling {
        circuit: name.to_owned(),
        nodes: netlist.num_nodes() as u64,
        pairs: patterns.len() as u64,
        slots: slot_list.len() as u64,
        points,
    }
}

/// Re-runs the engine gated vs ungated at each activity factor of
/// `factors` on stimuli generated with that factor, asserting bit-for-bit
/// identity at every point (via [`measure_activity_point`]).
fn activity_sweep(
    name: &str,
    netlist: &Arc<Netlist>,
    annotation: &Arc<TimingAnnotation>,
    chars: &CharacterizedLibrary,
    pairs: usize,
    factors: &[f64],
    threads: usize,
) -> ActivitySweep {
    let engine = Engine::new(
        Arc::clone(netlist),
        Arc::clone(annotation),
        Arc::new(chars.model().clone()),
    )
    .expect("engine builds");
    let width = netlist.inputs().len();
    let seed = 0xAC71_0000 ^ netlist.num_nodes() as u64;
    let points = factors
        .iter()
        .map(|&factor| {
            let patterns = activity_patterns(width, pairs, factor, seed);
            measure_activity_point(&engine, &patterns, factor, threads)
        })
        .collect();
    ActivitySweep {
        circuit: name.to_owned(),
        nodes: netlist.num_nodes() as u64,
        pairs: pairs as u64,
        slots: pairs as u64,
        points,
    }
}

/// Same pattern recipe as `table1`: pseudo-random pairs topped off with
/// timing-aware patterns on the longest paths (unless they are all false
/// paths), so the two reports measure identical workloads.
fn build_patterns(
    netlist: &Arc<Netlist>,
    annotation: &Arc<TimingAnnotation>,
    profile: &CircuitProfile,
    pairs_cap: usize,
) -> PatternSet {
    let width = netlist.inputs().len();
    let count = profile.test_pairs.min(pairs_cap);
    let seed = 0xA5F5_0000 ^ profile.nodes as u64;
    let mut patterns = PatternSet::random(width, count, seed);
    if !profile.false_paths_only {
        let levels = avfs_netlist::Levelization::of(netlist).expect("acyclic");
        let k = 200.min(count.max(8));
        let paths = k_longest_paths(netlist, &levels, Some(annotation), k);
        let outcomes = generate_timing_aware(netlist, &levels, &paths, 4, seed ^ 0xFF);
        patterns.extend(collect_pairs(&outcomes).iter().cloned());
    }
    patterns
}
