//! batch_throughput — compile-once / simulate-many amortization check.
//!
//! Runs the same short workload N times two ways on identical inputs:
//! once the legacy way (a fresh [`avfs_core::Engine`] — and with it a
//! fresh compile and worker pool — per run) and once through a
//! [`avfs_core::BatchRunner`] that compiles a single shared
//! [`avfs_core::CompiledNetlist`] and keeps the pool parked between
//! launches. Results are asserted bit-for-bit identical run-for-run and
//! arm-for-arm; the printed table is the setup-amortization payoff. A
//! shard-size sweep then executes a slot grid wider than one arena batch
//! at several shard sizes (including auto under a reduced waveform
//! budget) and asserts every stitched result identical to the unsharded
//! reference — the acceptance gate for transparent sharding.
//!
//! `--smoke` is the CI gate: a small adder, a handful of runs, identity
//! plus the cache contract (`compile_misses == 1`,
//! `compile_hits == runs`) enforced, fast enough for every commit. The
//! speedup itself is *reported* but not gated in smoke mode — on a
//! loaded 1-CPU CI container wall-clock ratios are too noisy to assert.
//!
//! ```text
//! cargo run --release -p avfs-bench --bin batch_throughput [-- --scale 0.01 --runs 64]
//! cargo run -p avfs-bench --bin batch_throughput -- --smoke
//! ```

use avfs_atpg::PatternSet;
use avfs_bench::{activity_patterns, characterize_used, measure_batch_throughput, Args};
use avfs_circuits::{ripple_carry_adder, PAPER_PROFILES};
use avfs_core::SimOptions;
use avfs_netlist::CellLibrary;
use std::sync::Arc;

fn main() {
    let args = Args::capture();
    if args.flag("--help") {
        println!("batch_throughput: compile-once vs compile-per-run A/B with shard sweep");
        println!("  --scale <f>    circuit scale factor (default 0.01 of paper node counts)");
        println!("  --runs <n>     repeated runs per arm (default 64)");
        println!(
            "  --pairs <n>    pattern pairs per run (default 2; short runs expose setup cost)"
        );
        println!("  --activity <f> stimuli activity factor (default 0.1: the incremental");
        println!("                 re-simulation workload batching is for; 1.0 = dense random)");
        println!("  --arena <n>    transitions/net arena capacity (0 = engine default)");
        println!("  --threads <n>  worker threads (0 = auto, the default)");
        println!("  --smoke        CI mode: small adder, identity + cache contract, no table");
        return;
    }
    let library = CellLibrary::nangate15_like();
    let threads = SimOptions {
        threads: args.value("--threads").unwrap_or(0),
        ..SimOptions::default()
    }
    .resolved_threads();

    if args.flag("--smoke") {
        let netlist = Arc::new(ripple_carry_adder(16, &library).expect("adder builds"));
        let chars = characterize_used(&[netlist.as_ref()], &library, 2);
        let patterns = PatternSet::lfsr(netlist.inputs().len(), 4, 7);
        let runs = 6;
        let bt = measure_batch_throughput(
            "rca16",
            &netlist,
            &chars,
            &patterns,
            runs,
            &SimOptions {
                threads,
                ..SimOptions::default()
            },
            &[0, 3],
            5,
        );
        // The helper already asserted run-for-run and shard-vs-unsharded
        // identity; the smoke gate additionally pins the cache contract.
        assert_eq!(bt.compile_misses, 1, "one compile for the whole batch");
        assert_eq!(
            bt.compile_hits, runs as u64,
            "every launch after the first reuses the artifact (plus the shard sweep's hit)"
        );
        assert!(
            bt.shard_points.iter().all(|p| p.identical),
            "every sharded run is bit-identical to the unsharded reference"
        );
        assert!(
            bt.shard_points.iter().any(|p| p.shards > 1),
            "the sweep actually sharded"
        );
        println!(
            "batch_throughput --smoke: {} runs identical across arms ({:.2}x amortized), \
             sharded == unsharded, compile_misses=1, OK",
            bt.runs, bt.speedup
        );
        return;
    }

    let scale: f64 = args.value("--scale").unwrap_or(0.01);
    let runs: usize = args.value("--runs").unwrap_or(64);
    let pairs: usize = args.value("--pairs").unwrap_or(2);
    let profile = PAPER_PROFILES
        .iter()
        .max_by_key(|p| p.nodes)
        .expect("paper profiles exist");
    eprintln!(
        "batch_throughput: synthesizing {} at scale {scale} ...",
        profile.name
    );
    let netlist = Arc::new(
        profile
            .synthesize(scale, &library)
            .expect("synthesis succeeds"),
    );
    let chars = characterize_used(&[netlist.as_ref()], &library, 3);
    // Default to low-activity stimuli: the batch-amortization customer is
    // the AVFS monitoring loop that re-simulates small input deltas over
    // and over, not one dense full-toggle run. `--activity 1.0` recovers
    // dense random pairs.
    let activity: f64 = args.value("--activity").unwrap_or(0.1);
    let seed = 0xBA7C_0000 ^ profile.nodes as u64;
    let patterns = activity_patterns(netlist.inputs().len(), pairs, activity, seed);
    let base = SimOptions {
        threads,
        arena_capacity: args.value("--arena").unwrap_or(0),
        ..SimOptions::default()
    };
    let bt = measure_batch_throughput(
        profile.name,
        &netlist,
        &chars,
        &patterns,
        runs,
        &base,
        &[0, 4, 7],
        3,
    );
    println!(
        "batch_throughput: {} ({} nodes, {} pairs, {} runs, {} threads)",
        bt.circuit, bt.nodes, bt.pairs, bt.runs, threads
    );
    println!(
        "  per-run Engine::new  {:>9.1} ms  ({:.3} ms/run)",
        bt.per_run_ms,
        bt.per_run_ms / bt.runs as f64
    );
    println!(
        "  BatchRunner          {:>9.1} ms  ({:.3} ms/run)  {:.2}x",
        bt.batched_ms,
        bt.batched_ms / bt.runs as f64,
        bt.speedup
    );
    println!(
        "  compile cache        {} miss, {} hits",
        bt.compile_misses, bt.compile_hits
    );
    println!("  shard sweep (grid of {} slots):", 4 * bt.pairs);
    for p in &bt.shard_points {
        let label = if p.shard_slots == 0 {
            "auto".to_owned()
        } else {
            p.shard_slots.to_string()
        };
        println!(
            "    shard_slots={label:<5} {:>2} shards  {:>9.1} ms  identical={}",
            p.shards, p.elapsed_ms, p.identical
        );
    }
}
