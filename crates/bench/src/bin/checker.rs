//! checker — the static-analysis gate emitting `avfs-check/1` JSON.
//!
//! Runs all three `avfs-check` analysis tiers, fully offline:
//!
//! 1. **netlist** — structural lints over the bundled benchmark circuits
//!    (arity, cross-reference consistency, levelization, connectivity,
//!    duplicate fan-in);
//! 2. **delay model** — a grid audit of the characterized polynomial
//!    kernel surfaces (finite coefficients, positive `1 + f(P)` scaling,
//!    voltage monotonicity) plus the paper's operating corners;
//! 3. **concurrency / unsafe** — exhaustive interleaving exploration of
//!    the waveform-arena claim-bit and worker-pool epoch protocols, and
//!    the SAFETY-comment lint over every `unsafe` site in the workspace
//!    source tree.
//!
//! ```text
//! cargo run -p avfs-bench --bin checker [-- --scale 0.01 --order 3 --out CHECK_report.json]
//! cargo run -p avfs-bench --bin checker -- --smoke   # CI: validate, require zero deny findings, write nothing
//! ```
//!
//! The process exits non-zero when any deny-severity finding exists, so
//! the binary doubles as the CI gate (`ci.sh`).

use avfs_bench::{characterize_used, Args};
use avfs_check::{Report, Severity, Subject};
use avfs_circuits::PAPER_PROFILES;
use avfs_delay::OperatingPoint;
use avfs_netlist::{CellLibrary, Netlist};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = Args::capture();
    if args.flag("--help") {
        println!("checker: three-tier static analysis, avfs-check/1 JSON report");
        println!("  --scale <f>   paper-circuit scale factor (default 0.01; full run only)");
        println!("  --order <N>   characterization polynomial order (default 3)");
        println!("  --out <path>  output path (default CHECK_report.json)");
        println!("  --smoke       small circuits only, validate, require zero deny, no file");
        println!("  --list-rules  print the full rule registry with severities and exit");
        return ExitCode::SUCCESS;
    }
    if args.flag("--list-rules") {
        println!("{} rules registered:", avfs_check::RULES.len());
        for rule in avfs_check::RULES {
            println!(
                "  {}  {:<5} tier {}  {:<32} {}",
                rule.id,
                rule.severity.name(),
                rule.tier,
                rule.name,
                rule.summary
            );
        }
        return ExitCode::SUCCESS;
    }
    let smoke = args.flag("--smoke");
    let scale: f64 = args.value("--scale").unwrap_or(0.01);
    let order: usize = args.value("--order").unwrap_or(3);
    let out: String = args
        .value("--out")
        .unwrap_or_else(|| "CHECK_report.json".into());
    let library = CellLibrary::nangate15_like();
    let mut report = Report::new();

    // Tier 1 — netlist lints. The smoke gate sticks to the small bundled
    // circuits; a full run also synthesizes the paper designs at --scale.
    let mut netlists: Vec<(String, Netlist)> = vec![
        (
            "c17".into(),
            avfs_circuits::c17(&library).expect("c17 builds"),
        ),
        (
            "rca8".into(),
            avfs_circuits::ripple_carry_adder(8, &library).expect("rca8 builds"),
        ),
        (
            "rnd-small".into(),
            avfs_circuits::random_netlist(
                "rnd-small",
                &avfs_circuits::GeneratorConfig::small(),
                &library,
                0xC0FFEE,
            )
            .expect("random netlist builds"),
        ),
    ];
    if !smoke {
        for profile in PAPER_PROFILES {
            netlists.push((
                profile.name.into(),
                profile
                    .synthesize(scale, &library)
                    .expect("synthesis succeeds"),
            ));
        }
    }
    for (name, netlist) in &netlists {
        report.push(Subject::new(
            name.clone(),
            "netlist",
            avfs_check::netlist::lint_netlist(netlist),
        ));
    }

    // Tier 2 — delay-model lints over a freshly characterized kernel:
    // the grid audit of every fitted surface, plus the paper's corner
    // operating points as intended-use checks.
    let refs: Vec<&Netlist> = netlists.iter().map(|(_, n)| n).collect();
    let chars = characterize_used(&refs, &library, order);
    let space = chars.space();
    let (v_min, v_max) = space.voltage_range();
    let (c_min, c_max) = space.load_range();
    let corners: Vec<(String, OperatingPoint)> = [
        ("corner v_min/c_min", OperatingPoint::new(v_min, c_min)),
        ("corner v_max/c_max", OperatingPoint::new(v_max, c_max)),
        (
            "nominal",
            OperatingPoint::new(space.nominal_vdd(), (c_min + c_max) / 2.0),
        ),
    ]
    .map(|(name, op)| (name.to_owned(), op))
    .into();
    report.push(Subject::new(
        "characterized-model",
        "delay-model",
        avfs_check::model::lint_model(chars.model(), &corners),
    ));

    // Tier 3a — concurrency audit: exhaustive interleaving exploration of
    // the claim-bit and epoch-barrier protocol models.
    let (runs, findings) = avfs_check::protocols::audit_concurrency();
    report.schedules_explored = runs
        .iter()
        .filter_map(|r| r.result.as_ref().ok())
        .map(|e| e.schedules)
        .sum();
    for run in &runs {
        match &run.result {
            Ok(explored) => eprintln!(
                "checker: {:<26} {} threads, {} schedules, depth {}",
                run.protocol, run.threads, explored.schedules, explored.max_depth
            ),
            Err(err) => eprintln!("checker: {:<26} VIOLATION: {err}", run.protocol),
        }
    }
    report.push(Subject::new("engine-protocols", "concurrency", findings));

    // Tier 3b — SAFETY-comment lint over the workspace source tree.
    let root = workspace_root();
    let safety =
        avfs_check::safety::lint_unsafe_comments(&root).expect("workspace tree is readable");
    report.push(Subject::new("workspace", "safety", safety));

    // The document must survive its own schema validation, always.
    let text = report.to_json().to_string_pretty();
    let back = Report::validate(&text).expect("emitted report validates against avfs-check/1");
    assert_eq!(back, report, "round trip is identity");

    println!(
        "checker: {} subjects — {} deny / {} warn / {} info, {} schedules explored",
        report.subjects.len(),
        report.count(Severity::Deny),
        report.count(Severity::Warn),
        report.count(Severity::Info),
        report.schedules_explored
    );
    for subject in &report.subjects {
        for finding in &subject.findings {
            println!("  {} ({}): {finding}", subject.name, subject.kind);
        }
    }

    if smoke {
        println!(
            "checker --smoke: schema avfs-check/1 OK ({} bytes)",
            text.len()
        );
    } else {
        // Carry over the STA cross-check section and subjects a previous
        // `sta_crosscheck` run merged into the document, so re-running
        // the checker does not drop them.
        let text = match std::fs::read_to_string(&out)
            .ok()
            .and_then(|prev| Report::validate(&prev).ok())
        {
            Some(prev) => {
                report.sta = prev.sta;
                report.subjects.extend(
                    prev.subjects
                        .into_iter()
                        .filter(|s| s.kind == "sta-crosscheck"),
                );
                let text = report.to_json().to_string_pretty();
                Report::validate(&text).expect("merged report validates against avfs-check/1");
                text
            }
            None => text,
        };
        std::fs::write(&out, &text).expect("report written");
        println!("checker: wrote {out}");
    }
    if report.passes_ci() {
        ExitCode::SUCCESS
    } else {
        eprintln!("checker: deny-severity findings present");
        ExitCode::FAILURE
    }
}

/// The workspace root, two levels up from this crate's manifest — the
/// tree the SAFETY lint walks.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}
