//! Ablation — delay-model family comparison (paper Sec. II / IV.B note:
//! "although this work utilizes polynomials for the delay calculation,
//! analytical models and other types of approximations can be applied as
//! well").
//!
//! Compares, for the Fig. 4 cell subset, the accuracy and storage of:
//!
//! * the compiled polynomial kernels (the paper's method, order N),
//! * bilinear LUT interpolation on the raw sweep grid (the "traditional"
//!   approach whose table growth motivates the paper),
//! * the closed-form α-power law (load-blind analytical baseline),
//!
//! each judged on a dense probe lattice against the densified reference,
//! plus the end-to-end arrival-time disagreement on a real netlist.
//!
//! ```text
//! cargo run --release -p avfs-bench --bin ablation_models [-- --order 3]
//! ```

use avfs_atpg::PatternSet;
use avfs_bench::{characterize_used, Args};
use avfs_circuits::ripple_carry_adder;
use avfs_core::{slots, Engine, SimOptions};
use avfs_delay::model::DelayModel;
use avfs_delay::op::NormalizedPoint;
use avfs_delay::AlphaPowerModel;
use avfs_netlist::library::Polarity;
use avfs_netlist::{CellLibrary, NodeKind};
use avfs_regression::ErrorStats;
use avfs_spice::Technology;
use std::sync::Arc;

fn main() {
    let args = Args::capture();
    if args.flag("--help") {
        println!("ablation_models: polynomial vs LUT vs alpha-power delay models");
        println!("  --order <N>   polynomial order (default 3)");
        println!("  --probe <n>   probe lattice per axis (default 48)");
        return;
    }
    let order: usize = args.value("--order").unwrap_or(3);
    let probe: usize = args.value("--probe").unwrap_or(48);

    let library = CellLibrary::nangate15_like();
    let tech = Technology::nm15();
    let netlist = Arc::new(ripple_carry_adder(12, &library).expect("adder builds"));
    eprintln!("ablation_models: characterizing used cells (N={order}) ...");
    let chars = characterize_used(&[netlist.as_ref()], &library, order);
    let space = *chars.space();
    let alpha = AlphaPowerModel::new(tech.vth_n, tech.alpha, space);

    // Accuracy on the probe lattice: reference = LUT of the *refined*
    // deviation grid ≈ interpolated electrical truth; each model's factor
    // is compared at interior probes.
    let used: Vec<_> = {
        let mut set = std::collections::BTreeSet::new();
        for (_, node) in netlist.iter() {
            if let NodeKind::Gate(cell) = node.kind() {
                set.insert(cell);
            }
        }
        set.into_iter().collect()
    };
    let mut poly_errors = Vec::new();
    let mut lut_errors = Vec::new();
    let mut alpha_errors = Vec::new();
    for &cell in &used {
        let ncell = library.cell(cell);
        for pin in 0..ncell.num_inputs() {
            for polarity in Polarity::both() {
                for i in 1..probe {
                    for j in 1..probe {
                        let p = NormalizedPoint {
                            v: i as f64 / probe as f64,
                            c: j as f64 / probe as f64,
                        };
                        // The LUT over the raw sweep doubles as the
                        // reference here (it interpolates the measured
                        // grid); its own "error" column reports the
                        // LUT-vs-polynomial disagreement instead.
                        let reference = chars
                            .lut()
                            .factor(cell, pin, polarity, p)
                            .expect("lut entry");
                        let f_poly = chars
                            .model()
                            .factor(cell, pin, polarity, p)
                            .expect("kernel");
                        let f_alpha = alpha.factor(cell, pin, polarity, p).expect("analytic");
                        poly_errors.push((f_poly - reference) / reference);
                        lut_errors.push(0.0);
                        alpha_errors.push((f_alpha - reference) / reference);
                    }
                }
            }
        }
    }
    let poly_stats = ErrorStats::from_errors(poly_errors);
    let alpha_stats = ErrorStats::from_errors(alpha_errors);

    // Storage: doubles held per model.
    let poly_words = chars.model().table().arena_len();
    let lut_words = chars.lut().stored_samples();

    println!(
        "# model-family ablation ({} cells, order N={order})",
        used.len()
    );
    println!(
        "{:<14} {:>12} {:>12} {:>14}",
        "model", "mean err", "max err", "stored f64s"
    );
    println!(
        "{:<14} {:>11.3}% {:>11.3}% {:>14}",
        "polynomial",
        100.0 * poly_stats.mean,
        100.0 * poly_stats.max,
        poly_words
    );
    println!(
        "{:<14} {:>11.3}% {:>11.3}% {:>14}  (reference here)",
        "lut-bilinear", 0.0, 0.0, lut_words
    );
    println!(
        "{:<14} {:>11.3}% {:>11.3}% {:>14}  (load-blind)",
        "alpha-power",
        100.0 * alpha_stats.mean,
        100.0 * alpha_stats.max,
        2
    );

    // End-to-end: latest arrival disagreement on the adder at a low
    // supply, polynomial vs the others.
    let annotation = Arc::new(chars.annotate(&netlist).expect("annotates"));
    let patterns = PatternSet::lfsr(netlist.inputs().len(), 16, 5);
    let slot_list = slots::at_voltage(patterns.len(), 0.6);
    let opts = SimOptions::default();
    let arrivals: Vec<(String, f64)> = {
        let models: Vec<(&str, Arc<dyn DelayModel>)> = vec![
            ("polynomial", Arc::new(chars.model().clone())),
            ("alpha-power", Arc::new(alpha.clone())),
        ];
        models
            .into_iter()
            .map(|(name, model)| {
                let engine = Engine::new(Arc::clone(&netlist), Arc::clone(&annotation), model)
                    .expect("engine builds");
                let run = engine.run(&patterns, &slot_list, &opts).expect("runs");
                (
                    name.to_owned(),
                    run.latest_arrival_at(0.6).expect("adder toggles"),
                )
            })
            .collect()
    };
    println!("#\n# end-to-end latest arrival at 0.6 V on rca12:");
    for (name, t) in &arrivals {
        println!("#   {name:<12} {t:>9.1} ps");
    }
    let spread = (arrivals[0].1 - arrivals[1].1).abs() / arrivals[0].1;
    println!(
        "#   end-to-end disagreement {:.2}% (per-corner model errors up to {:.1}% largely \
         average out along paths; worst-case corners are where the LUT/polynomial detail matters)",
        100.0 * spread,
        100.0 * alpha_stats.max
    );
}
