//! thread_scaling — worker-pool scaling check for the persistent-pool
//! engine.
//!
//! Re-runs one circuit at increasing worker counts on identical inputs,
//! asserts the pooled engine's hard invariant (results bit-for-bit
//! identical to the single-threaded path at every count) and prints the
//! wall-clock scaling table. `--smoke` is the CI gate: a small adder,
//! threads 1 vs 2, identity enforced, fast enough for every commit.
//!
//! ```text
//! cargo run --release -p avfs-bench --bin thread_scaling [-- --scale 0.01 --pairs 24]
//! cargo run --release -p avfs-bench --bin thread_scaling -- --smoke
//! ```

use avfs_atpg::PatternSet;
use avfs_bench::{characterize_used, Args};
use avfs_circuits::{ripple_carry_adder, PAPER_PROFILES};
use avfs_core::{slots, Engine, SimOptions, SimRun};
use avfs_delay::{CharacterizedLibrary, TimingAnnotation};
use avfs_netlist::{CellLibrary, Netlist};
use std::sync::Arc;

fn main() {
    let args = Args::capture();
    if args.flag("--help") {
        println!("thread_scaling: worker-pool scaling sweep with identity checks");
        println!("  --scale <f>   circuit scale factor (default 0.01 of paper node counts)");
        println!("  --pairs <n>   cap on pattern pairs (default 24)");
        println!("  --smoke       CI mode: small adder, threads 1 vs 2, no table");
        return;
    }
    let library = CellLibrary::nangate15_like();

    if args.flag("--smoke") {
        let netlist = Arc::new(ripple_carry_adder(32, &library).expect("adder builds"));
        let chars = characterize_used(&[netlist.as_ref()], &library, 2);
        let annotation = Arc::new(chars.annotate(&netlist).expect("annotation"));
        let patterns = PatternSet::lfsr(netlist.inputs().len(), 16, 7);
        sweep("rca32", &netlist, &annotation, &chars, &patterns, &[1, 2]);
        println!("thread_scaling --smoke: identical results at threads 1 and 2, OK");
        return;
    }

    let scale: f64 = args.value("--scale").unwrap_or(0.01);
    let pairs_cap: usize = args.value("--pairs").unwrap_or(24);
    let profile = PAPER_PROFILES
        .iter()
        .max_by_key(|p| p.nodes)
        .expect("paper profiles exist");
    eprintln!(
        "thread_scaling: synthesizing {} at scale {scale} ...",
        profile.name
    );
    let netlist = Arc::new(
        profile
            .synthesize(scale, &library)
            .expect("synthesis succeeds"),
    );
    let chars = characterize_used(&[netlist.as_ref()], &library, 3);
    let annotation = Arc::new(chars.annotate(&netlist).expect("all cells characterized"));
    let patterns = PatternSet::random(
        netlist.inputs().len(),
        profile.test_pairs.min(pairs_cap),
        0xA5F5_0000 ^ profile.nodes as u64,
    );
    sweep(
        profile.name,
        &netlist,
        &annotation,
        &chars,
        &patterns,
        &[1, 2, 4, 8],
    );
}

/// Runs the sweep, asserting identity against the first (single-worker)
/// run and printing one line per point.
fn sweep(
    name: &str,
    netlist: &Arc<Netlist>,
    annotation: &Arc<TimingAnnotation>,
    chars: &CharacterizedLibrary,
    patterns: &PatternSet,
    counts: &[usize],
) {
    let engine = Engine::new(
        Arc::clone(netlist),
        Arc::clone(annotation),
        Arc::new(chars.model().clone()),
    )
    .expect("engine builds");
    let slot_list = slots::at_voltage(patterns.len(), 0.8);
    let mut reference: Option<SimRun> = None;
    let mut single_ms = 0.0;
    println!(
        "thread_scaling: {name} ({} nodes, {} slots)",
        netlist.num_nodes(),
        slot_list.len()
    );
    for &threads in counts {
        let run = engine
            .run(
                patterns,
                &slot_list,
                &SimOptions {
                    threads,
                    ..SimOptions::default()
                },
            )
            .expect("engine runs");
        let elapsed_ms = run.elapsed.as_secs_f64() * 1e3;
        match &reference {
            None => {
                single_ms = elapsed_ms;
                reference = Some(run);
            }
            Some(r) => {
                assert_eq!(
                    r.slots, run.slots,
                    "{name}: results diverge at threads={threads}"
                );
                assert_eq!(
                    r.diagnostics, run.diagnostics,
                    "{name}: diagnostics diverge at threads={threads}"
                );
            }
        }
        println!(
            "  threads={threads:<2} {elapsed_ms:>9.1} ms  ({:.2}x vs single)",
            single_ms / elapsed_ms.max(1e-9)
        );
    }
}
