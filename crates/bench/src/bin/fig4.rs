//! Fig. 4 — approximation-error distribution of cell-delay polynomials.
//!
//! Sweeps the Fig. 4 cell subset (AND, NAND, BUF, INV, OR, NOR at all
//! drive strengths) once with the paper's operating-point grid, then fits
//! polynomials of order `2·N` for `N = 1…5` against the shared sweep data
//! and reports the distribution of per-cell mean / stddev / max relative
//! errors over a 64 × 64 probe lattice.
//!
//! ```text
//! cargo run --release -p avfs-bench --bin fig4 [-- --orders 1,2,3,4,5 --ablation]
//! ```

use avfs_bench::Args;
use avfs_delay::characterize::{deviation_grid, fit_deviation_grid};
use avfs_delay::ParameterSpace;
use avfs_netlist::library::Polarity;
use avfs_netlist::CellLibrary;
use avfs_regression::stats::StatsDistribution;
use avfs_regression::ErrorStats;
use avfs_spice::{sweep::sweep_pin, SweepConfig, Technology};

fn main() {
    let args = Args::capture();
    if args.flag("--help") {
        println!("fig4: cell-delay polynomial approximation error distributions");
        println!("  --orders <csv>   per-variable orders to evaluate (default 1,2,3,4,5)");
        println!("  --probe <n>      probe lattice per axis (default 64)");
        println!("  --refine <n>     grid densification factor (default 4)");
        println!("  --ablation       also print coefficient counts and fit runtimes");
        return;
    }
    let orders: Vec<usize> = args
        .value::<String>("--orders")
        .unwrap_or_else(|| "1,2,3,4,5".to_owned())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let probe: usize = args.value("--probe").unwrap_or(64);
    let refine: usize = args.value("--refine").unwrap_or(4);

    let library = CellLibrary::nangate15_like();
    let tech = Technology::nm15();
    let sweep = SweepConfig::paper();
    let space = ParameterSpace::paper();

    // The Fig. 4 subset: AND, NAND, BUF, INV, OR and NOR for all driving
    // strengths (two-input forms for the multi-input functions).
    let mut cell_names = Vec::new();
    for base in ["AND2", "NAND2", "BUF", "INV", "OR2", "NOR2"] {
        for strength in ["X1", "X2", "X4", "X8"] {
            cell_names.push(format!("{base}_{strength}"));
        }
    }

    eprintln!(
        "fig4: sweeping {} cells over {} voltages x {} loads ...",
        cell_names.len(),
        sweep.voltages.len(),
        sweep.loads_ff.len()
    );

    // Step A once per (cell, pin, polarity); reused across orders.
    let mut grids = Vec::new(); // (cell name, Vec<DataGrid>)
    for name in &cell_names {
        let id = library.find(name).expect("subset cell exists");
        let cell = library.cell(id);
        let mut cell_grids = Vec::new();
        for pin in 0..cell.num_inputs() {
            for polarity in Polarity::both() {
                let surface =
                    sweep_pin(&tech, cell, pin, polarity, &sweep).expect("sweep succeeds");
                cell_grids.push(deviation_grid(&surface, &space).expect("grid is valid"));
            }
        }
        grids.push((name.clone(), cell_grids));
    }

    println!("# Fig. 4 — approximation error of cell delay polynomials");
    println!(
        "# subset: AND/NAND/BUF/INV/OR/NOR x X1,X2,X4,X8 ({} cells)",
        cell_names.len()
    );
    println!("# probe lattice {probe}x{probe}, refine factor {refine}, errors in % relative delay");
    println!(
        "{:>5} {:>7} | {:>10} {:>10} {:>10} | {:>10} {:>10} | {:>10}",
        "2N", "coeffs", "avg mean", "p50 mean", "p90 mean", "avg stddev", "avg max", "worst max"
    );
    for &order in &orders {
        let mut dist = StatsDistribution::new();
        let mut fit_ms = Vec::new();
        for (_, cell_grids) in &grids {
            let mut cell_errors: Vec<f64> = Vec::new();
            for grid in cell_grids {
                let fit = fit_deviation_grid(grid, order, refine, probe).expect("fit succeeds");
                cell_errors.extend(fit.probe_errors);
                fit_ms.push(fit.fit_millis);
            }
            dist.push(ErrorStats::from_errors(cell_errors));
        }
        let coeffs = (order + 1) * (order + 1);
        println!(
            "{:>5} {:>7} | {:>9.4}% {:>9.4}% {:>9.4}% | {:>9.4}% {:>9.4}% | {:>9.4}%",
            2 * order,
            coeffs,
            100.0 * dist.avg_mean(),
            100.0 * dist.mean_quantile(0.5),
            100.0 * dist.mean_quantile(0.9),
            100.0 * dist.avg_stddev(),
            100.0 * dist.avg_max(),
            100.0 * dist.worst_max(),
        );
        if args.flag("--ablation") {
            let total: f64 = fit_ms.iter().sum();
            let max = fit_ms.iter().fold(0.0f64, |m, &x| m.max(x));
            println!(
                "#   ablation N={order}: {coeffs} coeffs/pin-polarity, {} fits, {:.2} ms total ({:.3} ms max per fit)",
                fit_ms.len(),
                total,
                max
            );
        }
    }
    println!("# paper reference: for N >= 3 avg stddev < 1%, avg max < 2.7%, worst sample 5.35%");
}
