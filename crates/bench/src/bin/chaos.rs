//! chaos — the fault-injection soak harness emitting `avfs-chaos/1` JSON.
//!
//! Soaks the engine under deterministic fault injection ([`avfs_inject`])
//! in two sweeps, asserting the robustness invariants after every run:
//!
//! 1. **targeted** — one run per [`InjectionSite`] at rate 1.0 (plus a
//!    zero-deadline and a starved-memory-budget run), so every site and
//!    every degraded [`SlotStatus`] is exercised deterministically;
//! 2. **soak** — randomized fault plans ([`FaultPlan::randomized`])
//!    replayed across the determinism matrix (threads × activity gating ×
//!    profiling), with a seed-replay pass per plan.
//!
//! Invariants checked after every run:
//!
//! * the run terminates and returns (no deadlock) — either `Ok` or the
//!   graceful [`SimError::AllSlotsFailed`];
//! * every slot resolves to a definite [`SlotStatus`];
//! * slots the plan cannot have touched — predicted offline via the pure
//!   [`FaultPlan::decide`] hash, never from run output — are bit-for-bit
//!   identical to a clean reference run;
//! * re-running from the same plan seed replays bit-for-bit;
//! * the event-driven baseline contains injected panics per slot exactly
//!   as [`FaultPlan::decide`] predicts;
//! * across the whole session, every registered injection site fired at
//!   least once (100 % site coverage).
//!
//! ```text
//! cargo run --release -p avfs-bench --bin chaos [-- --soaks 8 --out CHAOS_report.json]
//! cargo run -p avfs-bench --bin chaos -- --smoke   # CI: reduced matrix, validate, no file
//! ```
//!
//! The process exits non-zero when any invariant fails or a site never
//! fires, so the binary doubles as the CI gate (`ci.sh`).

use avfs_bench::{activity_patterns, characterize_used, Args};
use avfs_circuits::ripple_carry_adder;
use avfs_core::slots::cross;
use avfs_core::{Engine, EventDrivenSimulator, SimError, SimOptions, SimRun, SlotStatus};
use avfs_delay::characterize::{characterize_library_injected, CharacterizationConfig};
use avfs_inject::{FaultPlan, InjectionSite, Injector, SITE_COUNT};
use avfs_netlist::{CellLibrary, Netlist};
use avfs_obs::Json;
use avfs_spice::Technology;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything the report needs to remember about the session.
#[derive(Default)]
struct Tally {
    /// Cumulative per-site hit counts over every plan of the session.
    site_hits: [u64; SITE_COUNT],
    /// Runs that returned `Ok` with every slot statused.
    graceful_ok: u64,
    /// Runs that degraded to [`SimError::AllSlotsFailed`].
    graceful_all_failed: u64,
    /// Per-slot bit-identity comparisons against the clean reference.
    identity_checks: u64,
    /// Seed-replay passes (full-run equality).
    replay_checks: u64,
    /// Final slot statuses observed, by class.
    completed: u64,
    overflowed: u64,
    panicked: u64,
    deadline_exceeded: u64,
    budget_exceeded: u64,
}

impl Tally {
    fn absorb_plan(&mut self, plan: &FaultPlan) {
        for site in InjectionSite::ALL {
            self.site_hits[site.index()] += plan.hits(site);
        }
    }

    fn absorb_statuses(&mut self, run: &SimRun) {
        for slot in &run.slots {
            match slot.status {
                SlotStatus::Completed { .. } => self.completed += 1,
                SlotStatus::Overflowed { .. } => self.overflowed += 1,
                SlotStatus::Panicked => self.panicked += 1,
                SlotStatus::DeadlineExceeded => self.deadline_exceeded += 1,
                SlotStatus::BudgetExceeded => self.budget_exceeded += 1,
            }
        }
    }
}

/// The subject circuit: small enough to soak in seconds, busy enough
/// that every injection site has something to bite on.
struct Subject {
    engine: Engine,
    baseline: EventDrivenSimulator,
    patterns: avfs_atpg::PatternSet,
    slots: Vec<avfs_core::slots::SlotSpec>,
    library: Arc<CellLibrary>,
    netlist: Arc<Netlist>,
}

fn subject(seed: u64) -> Subject {
    let library = CellLibrary::nangate15_like();
    let netlist = Arc::new(ripple_carry_adder(8, &library).expect("adder builds"));
    let chars = characterize_used(&[netlist.as_ref()], &library, 2);
    let annotation = Arc::new(chars.annotate(&netlist).expect("annotation"));
    let engine = Engine::new(
        Arc::clone(&netlist),
        Arc::clone(&annotation),
        Arc::new(chars.model().clone()),
    )
    .expect("engine builds");
    let baseline =
        EventDrivenSimulator::new(Arc::clone(&netlist), annotation).expect("baseline builds");
    let patterns = activity_patterns(netlist.inputs().len(), 4, 0.7, seed);
    let slots = cross(patterns.len(), &[0.8, 0.9, 1.0, 1.1]);
    Subject {
        engine,
        baseline,
        patterns,
        slots,
        library,
        netlist,
    }
}

/// Offline prediction of the slots a plan may have perturbed, from the
/// pure decision hash alone (never from run output). A slot is *suspect*
/// if a result-changing site could fire for it in any retry round:
/// forced arena overflow or an injected kernel panic at rounds
/// `0..=retries`, an allocation-cap denial at rounds `1..=retries`, or a
/// non-finite kernel corruption anywhere in its *voltage group* (the
/// site is keyed by the group's first batch member, and the fallback to
/// the nominal factor shifts every delay of the group at non-nominal
/// voltages; batch boundaries shift across retry rounds, so any group
/// member may be the key — the whole group is conservatively suspect).
/// Worker stalls are timing-only and never change results, so they are
/// excluded — the identity check *proves* they are harmless.
fn suspect_slots(
    plan: &FaultPlan,
    slots: &[avfs_core::slots::SlotSpec],
    retries: u32,
) -> Vec<bool> {
    let rounds = 0..=u64::from(retries);
    let nf_group_hit: Vec<bool> = slots
        .iter()
        .map(|spec| {
            slots.iter().enumerate().any(|(k, other)| {
                other.voltage.to_bits() == spec.voltage.to_bits()
                    && rounds
                        .clone()
                        .any(|r| plan.decide(InjectionSite::NonFiniteKernel, k as u64, r))
            })
        })
        .collect();
    (0..slots.len())
        .map(|s| {
            let key = s as u64;
            nf_group_hit[s]
                || rounds.clone().any(|round| {
                    plan.decide(InjectionSite::ArenaOverflow, key, round)
                        || plan.decide(InjectionSite::KernelPanic, key, round)
                        || (round > 0 && plan.decide(InjectionSite::AllocCapBreach, key, round))
                })
        })
        .collect()
}

/// Runs the engine under `plan` and checks the per-run invariants:
/// graceful termination, every slot statused, non-suspect slots
/// bit-identical to `clean`. Returns the run when at least one slot
/// survived.
fn checked_run(
    subject: &Subject,
    options: &SimOptions,
    clean: &SimRun,
    tally: &mut Tally,
    case: &str,
) -> Option<SimRun> {
    let plan = options.fault_plan.as_deref().expect("chaos runs are armed");
    match subject
        .engine
        .run(&subject.patterns, &subject.slots, options)
    {
        Ok(run) => {
            assert_eq!(
                run.slots.len(),
                subject.slots.len(),
                "{case}: every slot must resolve to a status"
            );
            let suspects = suspect_slots(plan, &subject.slots, options.overflow_retries);
            for (i, suspect) in suspects.iter().enumerate() {
                if !suspect {
                    assert_eq!(
                        run.slots[i], clean.slots[i],
                        "{case}: slot {i} is fault-free by prediction and must be \
                         bit-identical to the clean run"
                    );
                    tally.identity_checks += 1;
                }
            }
            tally.graceful_ok += 1;
            tally.absorb_statuses(&run);
            Some(run)
        }
        Err(SimError::AllSlotsFailed { slots }) => {
            assert_eq!(
                slots,
                subject.slots.len(),
                "{case}: total loss must account for every slot"
            );
            tally.graceful_all_failed += 1;
            None
        }
        Err(other) => panic!("{case}: ungraceful failure: {other}"),
    }
}

/// One targeted run per injection site at rate 1.0, so coverage of every
/// site is deterministic rather than probabilistic, plus the two budget
/// degradations (deadline, memory) the soak cannot force on demand.
fn targeted_sweep(subject: &Subject, tally: &mut Tally) {
    // Forced arena overflow on every write of every round: every busy
    // slot must degrade to Overflowed (or the run to total loss).
    let plan = Arc::new(FaultPlan::empty(0x0DD5EED).with_rate(InjectionSite::ArenaOverflow, 1.0));
    let clean = subject
        .engine
        .run(&subject.patterns, &subject.slots, &SimOptions::default())
        .expect("clean reference run");
    let opts = SimOptions {
        fault_plan: Some(Arc::clone(&plan)),
        ..SimOptions::default()
    };
    checked_run(subject, &opts, &clean, tally, "targeted arena-overflow");
    assert!(plan.hits(InjectionSite::ArenaOverflow) > 0);
    tally.absorb_plan(&plan);

    // The same site at rate 0.5 with retries disabled: hit slots must
    // end Overflowed while the rest complete bit-identically.
    let plan = Arc::new(FaultPlan::empty(0x0DD5EED).with_rate(InjectionSite::ArenaOverflow, 0.5));
    let opts = SimOptions {
        overflow_retries: 0,
        fault_plan: Some(Arc::clone(&plan)),
        ..SimOptions::default()
    };
    let run = checked_run(subject, &opts, &clean, tally, "targeted overflow-no-retry")
        .expect("rate 0.5 leaves survivors");
    assert!(
        run.slots
            .iter()
            .any(|s| matches!(s.status, SlotStatus::Overflowed { .. })),
        "with retries disabled a forced overflow must surface as Overflowed"
    );
    assert!(plan.hits(InjectionSite::ArenaOverflow) > 0);
    tally.absorb_plan(&plan);

    // Injected kernel panic in every slot: containment must hold for all
    // of them and the run degrade to AllSlotsFailed.
    let plan = Arc::new(FaultPlan::empty(0x0DD5EED).with_rate(InjectionSite::KernelPanic, 1.0));
    let opts = SimOptions {
        fault_plan: Some(Arc::clone(&plan)),
        ..SimOptions::default()
    };
    checked_run(subject, &opts, &clean, tally, "targeted kernel-panic");
    assert!(plan.hits(InjectionSite::KernelPanic) > 0);
    tally.absorb_plan(&plan);

    // Non-finite kernel output everywhere: the nominal-factor fallback
    // must keep every slot alive (delays revert to nominal, so results
    // legitimately differ from clean at non-nominal voltages).
    let plan = Arc::new(FaultPlan::empty(0x0DD5EED).with_rate(InjectionSite::NonFiniteKernel, 1.0));
    let opts = SimOptions {
        fault_plan: Some(Arc::clone(&plan)),
        ..SimOptions::default()
    };
    let run = checked_run(subject, &opts, &clean, tally, "targeted non-finite-kernel")
        .expect("fallback keeps every slot alive");
    assert!(
        run.is_complete(),
        "nominal-factor fallback must keep every corrupted slot alive"
    );
    assert!(run.diagnostics.kernel_fallbacks > 0);
    assert!(plan.hits(InjectionSite::NonFiniteKernel) > 0);
    tally.absorb_plan(&plan);

    // Every worker stalls every epoch (briefly); results must not move
    // and the armed watchdog must observe at least one stall.
    let plan = Arc::new(
        FaultPlan::empty(0x0DD5EED)
            .with_rate(InjectionSite::WorkerStall, 1.0)
            .with_stall(Duration::from_millis(3)),
    );
    let opts = SimOptions {
        threads: 2,
        stall_timeout: Some(Duration::from_millis(1)),
        fault_plan: Some(Arc::clone(&plan)),
        ..SimOptions::default()
    };
    let run = checked_run(subject, &opts, &clean, tally, "targeted worker-stall")
        .expect("stalls delay, never fail");
    assert_eq!(run.slots, clean.slots, "stalls are timing-only");
    assert!(plan.hits(InjectionSite::WorkerStall) > 0);
    assert!(
        run.diagnostics.watchdog_stalls > 0,
        "the watchdog must notice a 3 ms stall at a 1 ms timeout"
    );
    tally.absorb_plan(&plan);

    // Allocation-cap breach: organic overflows (capacity 1) whose retry
    // round is denied — the slot degrades to BudgetExceeded.
    let plan = Arc::new(FaultPlan::empty(0x0DD5EED).with_rate(InjectionSite::AllocCapBreach, 1.0));
    let opts = SimOptions {
        arena_capacity: 1,
        fault_plan: Some(Arc::clone(&plan)),
        ..SimOptions::default()
    };
    let clean_tiny = subject
        .engine
        .run(
            &subject.patterns,
            &subject.slots,
            &SimOptions {
                arena_capacity: 1,
                ..SimOptions::default()
            },
        )
        .expect("clean capacity-1 reference");
    assert!(
        !clean_tiny.diagnostics.overflowed_slots.is_empty(),
        "capacity 1 must overflow organically for the breach site to matter"
    );
    checked_run(
        subject,
        &opts,
        &clean_tiny,
        tally,
        "targeted alloc-cap-breach",
    );
    assert!(plan.hits(InjectionSite::AllocCapBreach) > 0);
    tally.absorb_plan(&plan);

    // SPICE / characterization failure: the delay flow must abort with a
    // clean error, not a panic.
    let plan = Arc::new(FaultPlan::empty(0x0DD5EED).with_rate(InjectionSite::SpiceFailure, 1.0));
    let cells = avfs_bench::used_cells(&[subject.netlist.as_ref()], &subject.library);
    let config = CharacterizationConfig {
        order: 2,
        ..CharacterizationConfig::default()
    };
    let err = characterize_library_injected(
        &subject.library,
        &Technology::nm15(),
        &config,
        Some(&cells),
        None,
        &Injector::armed(Arc::clone(&plan)),
    )
    .expect_err("an injected SPICE failure must abort characterization");
    assert!(
        err.to_string().contains("injected"),
        "the error must carry the injection provenance: {err}"
    );
    assert!(plan.hits(InjectionSite::SpiceFailure) > 0);
    tally.absorb_plan(&plan);

    // Deadline zero: every slot must degrade to DeadlineExceeded and the
    // run to the graceful total-loss error.
    let opts = SimOptions {
        deadline: Some(Duration::ZERO),
        ..SimOptions::default()
    };
    match subject.engine.run(&subject.patterns, &subject.slots, &opts) {
        Err(SimError::AllSlotsFailed { slots }) => {
            assert_eq!(slots, subject.slots.len());
            tally.graceful_all_failed += 1;
        }
        other => panic!(
            "a zero deadline must fail every slot, got {:?}",
            other.map(|r| r.summary())
        ),
    }

    // Deadline mid-run, best effort: one-slot batches and a widening
    // ladder of deadlines so at least one run usually degrades
    // partially (some slots Completed, the rest DeadlineExceeded). The
    // split point is a wall-clock race, so no assertion rides on it —
    // the ladder only feeds the status census.
    let one_slot_batches = subject.netlist.num_nodes() * 64;
    for micros in [150, 400, 1000, 3000, 8000] {
        let opts = SimOptions {
            deadline: Some(Duration::from_micros(micros)),
            waveform_budget: one_slot_batches,
            ..SimOptions::default()
        };
        match subject.engine.run(&subject.patterns, &subject.slots, &opts) {
            Ok(run) => {
                let partial = run
                    .slots
                    .iter()
                    .any(|s| s.status == SlotStatus::DeadlineExceeded);
                tally.graceful_ok += 1;
                tally.absorb_statuses(&run);
                if partial || run.is_complete() {
                    break;
                }
            }
            Err(SimError::AllSlotsFailed { .. }) => tally.graceful_all_failed += 1,
            Err(other) => panic!("deadline ladder: ungraceful failure: {other}"),
        }
    }

    // Memory budget of one byte: every quarantine retry is denied and
    // the organically overflowing slots degrade to BudgetExceeded. The
    // probe finds a capacity where only *some* slots overflow, so the
    // denial demonstrably spares the healthy ones.
    let mut probed = None;
    for cap in [2, 4, 8, 16, 32] {
        let probe = subject
            .engine
            .run(
                &subject.patterns,
                &subject.slots,
                &SimOptions {
                    arena_capacity: cap,
                    ..SimOptions::default()
                },
            )
            .expect("probe run");
        let over = probe.diagnostics.overflowed_slots.len();
        if over > 0 && over < subject.slots.len() {
            probed = Some((cap, probe.diagnostics.overflowed_slots.clone()));
            break;
        }
    }
    let (cap, overflowers) = probed.expect("some capacity splits the slot population");
    let run = subject
        .engine
        .run(
            &subject.patterns,
            &subject.slots,
            &SimOptions {
                arena_capacity: cap,
                memory_budget: 1,
                ..SimOptions::default()
            },
        )
        .expect("the non-overflowing slots survive the starved budget");
    for (i, slot) in run.slots.iter().enumerate() {
        let expected = if overflowers.contains(&i) {
            SlotStatus::BudgetExceeded
        } else {
            SlotStatus::Completed { retries: 0 }
        };
        assert_eq!(
            slot.status, expected,
            "slot {i} at capacity {cap} under a 1-byte budget"
        );
    }
    tally.graceful_ok += 1;
    tally.absorb_statuses(&run);
    eprintln!("chaos: targeted sweep OK (all {SITE_COUNT} sites + deadline + memory budget)");
}

/// Randomized plans across the determinism matrix, with a seed-replay
/// pass per plan.
fn soak_sweep(subject: &Subject, seeds: &[u64], thread_axis: &[usize], tally: &mut Tally) {
    let clean = subject
        .engine
        .run(&subject.patterns, &subject.slots, &SimOptions::default())
        .expect("clean reference run");
    for &seed in seeds {
        // Short stall so a firing WorkerStall site costs microseconds,
        // not the 20 ms debugging default.
        let plan =
            Arc::new(FaultPlan::randomized(seed, 0.1).with_stall(Duration::from_micros(200)));
        let mut reference: Option<(String, Option<SimRun>)> = None;
        for &threads in thread_axis {
            for activity_gating in [false, true] {
                for profiling in [false, true] {
                    let case = format!(
                        "soak seed={seed:#x}, threads={threads}, \
                         gating={activity_gating}, profiling={profiling}"
                    );
                    let opts = SimOptions {
                        threads,
                        activity_gating,
                        profiling,
                        stall_timeout: Some(Duration::from_millis(50)),
                        fault_plan: Some(Arc::clone(&plan)),
                        ..SimOptions::default()
                    };
                    let run = checked_run(subject, &opts, &clean, tally, &case);
                    // Schedule-independence: the same plan must produce
                    // the same slot outcomes at every matrix point.
                    match &reference {
                        None => reference = Some((case, run)),
                        Some((ref_case, ref_run)) => {
                            let (got, want) = (
                                run.as_ref().map(|r| &r.slots),
                                ref_run.as_ref().map(|r| &r.slots),
                            );
                            assert_eq!(got, want, "{case}: slot outcomes must match {ref_case}");
                        }
                    }
                }
            }
        }
        // Seed replay: a fresh plan from the same seed, same options —
        // the whole run must reproduce bit for bit.
        let replay_plan =
            Arc::new(FaultPlan::randomized(seed, 0.1).with_stall(Duration::from_micros(200)));
        let replay_opts = |p: &Arc<FaultPlan>| SimOptions {
            threads: *thread_axis.last().expect("axis is non-empty"),
            stall_timeout: Some(Duration::from_millis(50)),
            fault_plan: Some(Arc::clone(p)),
            ..SimOptions::default()
        };
        let first = subject
            .engine
            .run(&subject.patterns, &subject.slots, &replay_opts(&plan));
        let second = subject.engine.run(
            &subject.patterns,
            &subject.slots,
            &replay_opts(&replay_plan),
        );
        match (first, second) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.slots, b.slots, "seed {seed:#x}: replay diverged");
                assert_eq!(
                    a.diagnostics, b.diagnostics,
                    "seed {seed:#x}: replay diagnostics diverged"
                );
                tally.replay_checks += 1;
            }
            (
                Err(SimError::AllSlotsFailed { slots: a }),
                Err(SimError::AllSlotsFailed { slots: b }),
            ) => {
                assert_eq!(a, b, "seed {seed:#x}: replay loss count diverged");
                tally.replay_checks += 1;
            }
            (a, b) => panic!(
                "seed {seed:#x}: replay outcome class diverged: {:?} vs {:?}",
                a.map(|r| r.summary()),
                b.map(|r| r.summary())
            ),
        }
        // Event-driven baseline cross-check: injected panics land exactly
        // on the slots the pure hash predicts, keyed (slot, 0).
        let ed_plan = Arc::new(FaultPlan::randomized(seed, 0.1));
        match subject.baseline.run_with_plan(
            &subject.patterns,
            &subject.slots,
            false,
            false,
            Some(&ed_plan),
        ) {
            Ok(run) => {
                for (i, slot) in run.slots.iter().enumerate() {
                    let predicted = ed_plan.decide(InjectionSite::KernelPanic, i as u64, 0);
                    assert_eq!(
                        slot.status == SlotStatus::Panicked,
                        predicted,
                        "seed {seed:#x}: baseline slot {i} panic mismatch"
                    );
                }
                tally.graceful_ok += 1;
                tally.absorb_statuses(&run);
            }
            Err(SimError::AllSlotsFailed { .. }) => {
                assert!(
                    (0..subject.slots.len()).all(|i| ed_plan.decide(
                        InjectionSite::KernelPanic,
                        i as u64,
                        0
                    )),
                    "seed {seed:#x}: baseline total loss without a full panic prediction"
                );
                tally.graceful_all_failed += 1;
            }
            Err(other) => panic!("seed {seed:#x}: baseline ungraceful failure: {other}"),
        }
        tally.absorb_plan(&ed_plan);
        tally.absorb_plan(&plan);
        tally.absorb_plan(&replay_plan);
        eprintln!(
            "chaos: soak seed {seed:#x} OK ({} matrix points, replay, baseline)",
            thread_axis.len() * 4
        );
    }
}

/// Builds the `avfs-chaos/1` document.
fn report(tally: &Tally, soaks: usize, matrix_runs: u64, wall: Duration) -> Json {
    let obj = |pairs: Vec<(&str, Json)>| {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    };
    let num = |n: u64| Json::Num(n as f64);
    let coverage = InjectionSite::ALL
        .iter()
        .map(|site| {
            obj(vec![
                ("site", Json::Str(site.name().to_owned())),
                ("hits", num(tally.site_hits[site.index()])),
                ("covered", Json::Bool(tally.site_hits[site.index()] > 0)),
            ])
        })
        .collect();
    obj(vec![
        ("schema", Json::Str("avfs-chaos/1".to_owned())),
        ("soak_plans", num(soaks as u64)),
        ("matrix_runs", num(matrix_runs)),
        ("wall_ms", num(wall.as_millis() as u64)),
        ("site_coverage", Json::Arr(coverage)),
        (
            "invariants",
            obj(vec![
                ("graceful_ok_runs", num(tally.graceful_ok)),
                ("graceful_total_loss_runs", num(tally.graceful_all_failed)),
                ("bit_identity_slot_checks", num(tally.identity_checks)),
                ("seed_replay_checks", num(tally.replay_checks)),
            ]),
        ),
        (
            "slot_statuses",
            obj(vec![
                ("completed", num(tally.completed)),
                ("overflowed", num(tally.overflowed)),
                ("panicked", num(tally.panicked)),
                ("deadline_exceeded", num(tally.deadline_exceeded)),
                ("budget_exceeded", num(tally.budget_exceeded)),
            ]),
        ),
    ])
}

fn main() -> ExitCode {
    let args = Args::capture();
    if args.flag("--help") {
        println!("chaos: deterministic fault-injection soak, avfs-chaos/1 JSON report");
        println!("  --soaks <n>   randomized fault plans to soak (default 8; smoke runs 2)");
        println!("  --seed <u64>  base seed for the soak plans (default 0xC4405)");
        println!("  --out <path>  output path (default CHAOS_report.json)");
        println!("  --smoke       reduced thread axis, validate, require coverage, no file");
        return ExitCode::SUCCESS;
    }
    let smoke = args.flag("--smoke");
    let base_seed: u64 = args.value("--seed").unwrap_or(0xC4405);
    let soaks: usize = args.value("--soaks").unwrap_or(if smoke { 2 } else { 8 });
    let out: String = args
        .value("--out")
        .unwrap_or_else(|| "CHAOS_report.json".into());

    // Injected panics are expected and contained; silence their default
    // backtrace spam but keep every organic panic loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.contains("injected") {
            default_hook(info);
        }
    }));

    let start = Instant::now();
    let subj = subject(0xC4A050001);
    let mut tally = Tally::default();
    targeted_sweep(&subj, &mut tally);

    let thread_axis: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let seeds: Vec<u64> = (0..soaks as u64)
        .map(|i| base_seed.wrapping_add(i))
        .collect();
    soak_sweep(&subj, &seeds, thread_axis, &mut tally);

    let matrix_runs = (seeds.len() * thread_axis.len() * 4) as u64;
    let doc = report(&tally, soaks, matrix_runs, start.elapsed());

    // 100 % site coverage is the gate: a site that never fired means an
    // injection hook rotted out of the code path it guards.
    let uncovered: Vec<&str> = InjectionSite::ALL
        .iter()
        .filter(|s| tally.site_hits[s.index()] == 0)
        .map(|s| s.name())
        .collect();
    if !uncovered.is_empty() {
        eprintln!("chaos: FAIL — sites never fired: {uncovered:?}");
        return ExitCode::FAILURE;
    }

    // The document must survive its own schema round-trip, always.
    let text = doc.to_string_pretty();
    let back = Json::parse(&text).expect("emitted report parses");
    assert_eq!(back, doc, "report must round-trip");
    assert_eq!(
        back.get("schema").and_then(Json::as_str),
        Some("avfs-chaos/1"),
        "schema header"
    );

    if smoke {
        eprintln!(
            "chaos --smoke: schema avfs-chaos/1 OK ({} bytes), all {} sites covered, \
             {} identity checks, {} replay checks",
            text.len(),
            SITE_COUNT,
            tally.identity_checks,
            tally.replay_checks
        );
        return ExitCode::SUCCESS;
    }
    std::fs::write(&out, text.as_bytes()).expect("report is writable");
    eprintln!(
        "chaos: wrote {out} ({} bytes) — all {} sites covered, {} matrix runs, \
         {} identity checks, {} replay checks",
        text.len(),
        SITE_COUNT,
        matrix_runs,
        tally.identity_checks,
        tally.replay_checks
    );
    ExitCode::SUCCESS
}
