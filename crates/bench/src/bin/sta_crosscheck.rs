//! sta_crosscheck — cross-validates the time simulator against the
//! independent `avfs-sta` static-timing oracle (DESIGN.md §16).
//!
//! Per circuit, the gate simulates an LFSR pattern set across the
//! paper's sweep voltages and runs [`avfs_core::sta::crosscheck`] on
//! the finished run: the STA latest arrival must dominate every
//! simulated latest transition (`AVC-T001` on violation — a bound
//! breach proves a bug in one of the two engines). On the agreement
//! circuits it additionally sensitizes the longest structural paths
//! with timing-aware ATPG and compares the simulated arrival of each
//! fully sensitized pair against the STA fold along that exact path
//! with simulation-derived edges — divergence beyond ε on the critical
//! sensitized path is `AVC-T002`.
//!
//! ```text
//! cargo run -p avfs-bench --bin sta_crosscheck -- --smoke   # CI: tier-1 circuits, no file write
//! cargo run -p avfs-bench --bin sta_crosscheck [-- --scale 0.01 --order 3 --patterns 12 --out CHECK_report.json]
//! ```
//!
//! A full run merges its `sta-crosscheck` subjects and the quantitative
//! `sta` section into the existing `CHECK_report.json` (preserving the
//! checker's own subjects). The process exits non-zero when any
//! deny-severity cross-check finding exists, so the binary doubles as
//! the CI gate alongside `checker`.

use avfs_atpg::timing_aware::collect_pairs;
use avfs_atpg::{generate_timing_aware, k_longest_paths, zero_delay_values, PatternSet};
use avfs_bench::{characterize_used, Args};
use avfs_check::{Finding, Report, Severity, StaSection, Subject};
use avfs_circuits::PAPER_PROFILES;
use avfs_core::sta::{crosscheck, scaled_graph, CrossCheckOptions};
use avfs_core::{slots, CompiledNetlist, SimOptions};
use avfs_netlist::{CellLibrary, Netlist};
use avfs_sta::crosscheck::agreement_finding;
use std::process::ExitCode;
use std::sync::Arc;

/// Table II's supply sweep — the voltages every circuit is compared at.
const SWEEP_VOLTAGES: [f64; 6] = [0.55, 0.6, 0.7, 0.8, 0.9, 1.1];

/// Longest paths targeted by the critical-path agreement check — the
/// paper's "200 longest paths" ATPG budget. The false-path-heavy
/// profile designs need the full depth before a sensitizable path
/// appears in the list.
const AGREEMENT_PATHS: usize = 200;

fn main() -> ExitCode {
    let args = Args::capture();
    if args.flag("--help") {
        println!("sta_crosscheck: STA ↔ simulator cross-validation gate (AVC-T rule family)");
        println!("  --scale <f>      paper-circuit scale factor (default 0.01; full run only)");
        println!("  --order <N>      characterization polynomial order (default 3)");
        println!("  --patterns <N>   LFSR pattern pairs per circuit (default 12)");
        println!("  --out <path>     report to merge into (default CHECK_report.json)");
        println!("  --smoke          tier-1 circuits only, validate, no file write");
        return ExitCode::SUCCESS;
    }
    let smoke = args.flag("--smoke");
    let scale: f64 = args.value("--scale").unwrap_or(0.01);
    let order: usize = args.value("--order").unwrap_or(3);
    let n_patterns: usize = args.value("--patterns").unwrap_or(12);
    let out: String = args
        .value("--out")
        .unwrap_or_else(|| "CHECK_report.json".into());
    let library = CellLibrary::nangate15_like();

    // The same circuit roster as `checker`: tier-1 always, the paper's
    // designs at --scale on a full run.
    let mut netlists: Vec<(String, Arc<Netlist>)> = vec![
        (
            "c17".into(),
            Arc::new(avfs_circuits::c17(&library).expect("c17 builds")),
        ),
        (
            "rca8".into(),
            Arc::new(avfs_circuits::ripple_carry_adder(8, &library).expect("rca8 builds")),
        ),
        (
            "rnd-small".into(),
            Arc::new(
                avfs_circuits::random_netlist(
                    "rnd-small",
                    &avfs_circuits::GeneratorConfig::small(),
                    &library,
                    0xC0FFEE,
                )
                .expect("random netlist builds"),
            ),
        ),
    ];
    if !smoke {
        for profile in PAPER_PROFILES {
            netlists.push((
                profile.name.into(),
                Arc::new(
                    profile
                        .synthesize(scale, &library)
                        .expect("synthesis succeeds"),
                ),
            ));
        }
    }
    // Agreement circuits: the carry chain is trivially sensitizable;
    // p951k is the acceptance target of the full run.
    let agreement: &[&str] = if smoke { &["rca8"] } else { &["rca8", "p951k"] };

    let refs: Vec<&Netlist> = netlists.iter().map(|(_, n)| n.as_ref()).collect();
    let chars = characterize_used(&refs, &library, order);
    let options = CrossCheckOptions::default();

    let mut subjects: Vec<Subject> = Vec::new();
    let mut rows = Vec::new();
    for (name, netlist) in &netlists {
        let annotation = Arc::new(
            chars
                .annotate(netlist.as_ref())
                .expect("annotation covers netlist"),
        );
        let compiled = CompiledNetlist::compile(
            Arc::clone(netlist),
            annotation,
            Arc::new(chars.model().clone()),
        )
        .expect("netlist compiles");
        let patterns = PatternSet::lfsr(netlist.inputs().len(), n_patterns, 0xA11CE);
        let slot_list = slots::cross(patterns.len(), &SWEEP_VOLTAGES);
        let run = compiled
            .launch(&patterns, &slot_list, &SimOptions::default())
            .expect("uniform launch succeeds");
        let check =
            crosscheck(&compiled, &run, name, &options).expect("sweep voltages are modelable");
        let mut findings = check.findings.clone();
        if agreement.contains(&name.as_str()) {
            findings.extend(critical_path_agreement(&compiled, name, &options));
        }
        for row in &check.rows {
            eprintln!(
                "sta_crosscheck: {:<10} @ {:>4} V  sta {:>9.3} ps  sim {:>9.3} ps  margin {:>9.3} ps",
                row.circuit,
                row.voltage,
                row.sta_latest_ps,
                row.sim_latest_ps.unwrap_or(f64::NAN),
                row.margin_ps.unwrap_or(f64::NAN),
            );
        }
        rows.extend(check.rows);
        subjects.push(Subject::new(name.clone(), "sta-crosscheck", findings));
    }
    let section = StaSection {
        epsilon_ps: options.epsilon_ps,
        rows,
    };

    // Assemble the report: fresh in smoke mode; merged into the
    // checker's document on a full run (its own subjects preserved, any
    // previous cross-check subjects and section replaced).
    let mut report = Report::new();
    if !smoke {
        if let Ok(prev) = std::fs::read_to_string(&out) {
            if let Ok(prev) = Report::validate(&prev) {
                report.tool_version = prev.tool_version;
                report.schedules_explored = prev.schedules_explored;
                report.subjects.extend(
                    prev.subjects
                        .into_iter()
                        .filter(|s| s.kind != "sta-crosscheck"),
                );
            }
        }
    }
    report.subjects.extend(subjects);
    report.sta = Some(section);

    // The document must survive its own schema validation, always.
    let text = report.to_json().to_string_pretty();
    let back = Report::validate(&text).expect("emitted report validates against avfs-check/1");
    assert_eq!(back, report, "round trip is identity");

    let deny: usize = report
        .subjects
        .iter()
        .filter(|s| s.kind == "sta-crosscheck")
        .flat_map(|s| &s.findings)
        .filter(|f| f.severity >= Severity::Deny)
        .count();
    println!(
        "sta_crosscheck: {} circuits × {} voltages — {deny} deny finding(s), ε = {} ps",
        netlists.len(),
        SWEEP_VOLTAGES.len(),
        options.epsilon_ps
    );
    for subject in report
        .subjects
        .iter()
        .filter(|s| s.kind == "sta-crosscheck")
    {
        for finding in &subject.findings {
            println!("  {}: {finding}", subject.name);
        }
    }
    if smoke {
        println!(
            "sta_crosscheck --smoke: schema avfs-check/1 OK ({} bytes)",
            text.len()
        );
    } else {
        std::fs::write(&out, &text).expect("report written");
        println!("sta_crosscheck: merged sta section into {out}");
    }
    if deny == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("sta_crosscheck: deny-severity findings present");
        ExitCode::FAILURE
    }
}

/// The `AVC-T002` agreement check: sensitize the longest structural
/// paths with timing-aware ATPG, simulate each fully sensitized pair at
/// nominal supply, and compare the simulated latest arrival against the
/// STA fold along the targeted path (edges derived from the zero-delay
/// capture values, so binate cells pose no problem).
///
/// A single-input-toggle pair can legitimately excite a reconvergent
/// chain *longer* than the targeted path off the same source (observed
/// on the rca8 carry chain: the simulated latest then realizes the
/// global STA bound instead of the targeted fold), so per-pair equality
/// cannot be demanded. What the shared-delay-matrix argument does
/// guarantee — and what this gate asserts — is that at least one
/// sensitized long path agrees with its STA fold *exactly* (within ε,
/// which is ~f64 noise): both engines run the identical
/// `t + delay(pin, edge)` fold over one matrix, so a propagation that
/// follows the targeted path bit-for-bit reproduces it. Zero agreeing
/// pairs means the two engines price arcs differently — `AVC-T002` on
/// the closest pair, with the divergence in the message.
fn critical_path_agreement(
    compiled: &CompiledNetlist,
    circuit: &str,
    options: &CrossCheckOptions,
) -> Vec<Finding> {
    let netlist = compiled.netlist().as_ref();
    let levels = compiled.levels().as_ref();
    let voltage = 0.8;
    let graph = scaled_graph(compiled, voltage).expect("nominal supply is modelable");
    let paths = k_longest_paths(
        netlist,
        levels,
        Some(compiled.annotation().as_ref()),
        AGREEMENT_PATHS,
    );
    let outcomes = generate_timing_aware(netlist, levels, &paths, 32, 0x5EED);
    let set = collect_pairs(&outcomes);
    let run = compiled
        .launch(
            &set,
            &slots::at_voltage(set.len(), voltage),
            &SimOptions {
                keep_waveforms: true,
                ..SimOptions::default()
            },
        )
        .expect("agreement launch succeeds");

    // Backward witness first: always available once any output toggles,
    // including on circuits whose long paths are all false paths.
    let mut findings =
        realized_chain_agreement(netlist, &graph, &run, circuit, voltage, options.epsilon_ps);

    // (sta fold, simulated latest, path index) per fully sensitized pair.
    let mut compared: Vec<(f64, f64, usize)> = Vec::new();
    for (i, (path, outcome)) in paths.iter().zip(&outcomes).enumerate() {
        if !outcome.sensitized {
            continue;
        }
        let v2 = zero_delay_values(netlist, levels, &outcome.pair.capture);
        // Sensitized ⇒ every path node toggles, so its capture value is
        // its final edge direction.
        let edges: Vec<bool> = path.nodes.iter().map(|&id| v2[id.index()]).collect();
        let Some(expected) = graph.path_arrival_with_edges(&path.nodes, &edges, 0.0) else {
            continue;
        };
        let Some(sim) = run.slots[i].latest_output_transition_ps else {
            continue;
        };
        eprintln!(
            "sta_crosscheck: {circuit} path {i} ({} nodes)  fold {expected:.6} ps  sim {sim:.6} ps",
            path.nodes.len()
        );
        compared.push((expected, sim, i));
    }
    if compared.is_empty() {
        eprintln!("sta_crosscheck: {circuit}: no sensitizable long path (all false paths)");
        return findings;
    }
    // The pair whose simulated arrival lands closest to its own fold;
    // exact agreement on any pair passes the forward gate.
    let &(expected, sim, i) = compared
        .iter()
        .min_by(|a, b| (a.1 - a.0).abs().total_cmp(&(b.1 - b.0).abs()))
        .expect("compared is non-empty");
    if (sim - expected).abs() <= options.epsilon_ps {
        eprintln!(
            "sta_crosscheck: {circuit}: path {i} agrees exactly \
             ({sim:.6} ps, {} of {} sensitized pairs compared)",
            compared.len(),
            paths.len()
        );
    } else {
        findings.extend(agreement_finding(
            &format!("{circuit} @ {voltage} V critical path {i}"),
            sim,
            expected,
            options.epsilon_ps,
        ));
    }
    findings
}

/// The backward agreement witness: take the slot whose simulated latest
/// arrival is the worst of the run, and from its critical endpoint walk
/// the realized event chain backwards — at every gate, the last output
/// transition must equal some fanin transition plus the STA arc delay
/// for the realized output edge, *bitwise*, because simulator and oracle
/// price arcs from one shared delay matrix. The STA fold along the
/// reconstructed chain then reproduces the simulated arrival exactly
/// (within ε); an arc the two engines price differently either breaks
/// the walk (no fanin matches) or the final fold — both are `AVC-T002`.
fn realized_chain_agreement(
    netlist: &Netlist,
    graph: &avfs_sta::TimingGraph<'_>,
    run: &avfs_core::SimRun,
    circuit: &str,
    voltage: f64,
    epsilon_ps: f64,
) -> Vec<Finding> {
    let Some((slot, t_end)) = run
        .slots
        .iter()
        .filter_map(|s| Some((s, s.latest_output_transition_ps?)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
    else {
        eprintln!("sta_crosscheck: {circuit}: no output toggled; no realized chain to check");
        return Vec::new();
    };
    let waves = slot
        .waveforms
        .as_ref()
        .expect("agreement run keeps waveforms");
    let po = netlist
        .outputs()
        .iter()
        .copied()
        .max_by(|&a, &b| {
            let last = |id: avfs_netlist::NodeId| {
                waves[id.index()]
                    .last_transition()
                    .unwrap_or(f64::NEG_INFINITY)
            };
            last(a).total_cmp(&last(b))
        })
        .expect("netlists have at least one output");

    let mut chain = Vec::new();
    let mut edges = Vec::new();
    let mut cur = po;
    let mut t = t_end;
    let mut edge = waves[po.index()].value_at(t);
    loop {
        chain.push(cur);
        edges.push(edge);
        let node = netlist.node(cur);
        if node.fanin().is_empty() {
            break;
        }
        let pins = graph.node_delays(cur);
        let mut matched = None;
        'pins: for (pin, &f) in node.fanin().iter().enumerate() {
            let d = pins[pin].for_output(edge);
            for (tf, vf) in waves[f.index()].iter() {
                if tf + d == t {
                    matched = Some((f, tf, vf));
                    break 'pins;
                }
            }
        }
        match matched {
            Some((f, tf, vf)) => {
                cur = f;
                t = tf;
                edge = vf;
            }
            None => {
                return vec![Finding::new(
                    "AVC-T002",
                    format!("{circuit} @ {voltage} V gate `{}`", node.name()),
                    format!(
                        "no fanin transition prices to this gate's transition at {t} ps \
                         under the STA arc delays — the engines disagree on the arc"
                    ),
                )];
            }
        }
    }
    chain.reverse();
    edges.reverse();
    // `t` is now the source transition instant (the run's launch time).
    let expected = graph
        .path_arrival_with_edges(&chain, &edges, t)
        .expect("the reconstructed chain is a fanin chain by construction");
    eprintln!(
        "sta_crosscheck: {circuit}: realized critical chain `{}` → `{}` ({} nodes), \
         sim {t_end:.6} ps, sta fold {expected:.6} ps",
        netlist.node(chain[0]).name(),
        netlist.node(po).name(),
        chain.len()
    );
    agreement_finding(
        &format!(
            "{circuit} @ {voltage} V realized critical path ({} nodes)",
            chain.len()
        ),
        t_end,
        expected,
        epsilon_ps,
    )
    .into_iter()
    .collect()
}
