//! Table I — circuit statistics and simulation performance at 0.8 V.
//!
//! For every design profile the paper lists, this harness synthesizes a
//! stand-in netlist (scaled by `--scale`; 1.0 = the paper's node counts),
//! generates the transition pattern set (pseudo-random pairs topped off
//! with timing-aware patterns on the longest paths, except for the `*`
//! designs whose long paths the paper found to be false paths), and
//! measures three simulators on identical inputs:
//!
//! * the serial event-driven baseline (Table I cols 4–5),
//! * the parallel engine with static delays (col 6, the \[25\] algorithm),
//! * the parallel engine with the order-`2·N` polynomial kernels
//!   (cols 7–9, the proposed method).
//!
//! ```text
//! cargo run --release -p avfs-bench --bin table1 [-- --scale 0.01 --pairs 24]
//! ```

use avfs_atpg::timing_aware::{collect_pairs, generate_timing_aware};
use avfs_atpg::{k_longest_paths, PatternSet};
use avfs_bench::{characterize_used, fmt_runtime, Args};
use avfs_circuits::{CircuitProfile, PAPER_PROFILES};
use avfs_core::{slots, Engine, EventDrivenSimulator, SimOptions};
use avfs_delay::StaticModel;
use avfs_netlist::{CellLibrary, NetlistStats};
use std::sync::Arc;

fn main() {
    let args = Args::capture();
    if args.flag("--help") {
        println!("table1: simulation performance comparison at V_DD = 0.8 V");
        println!("  --scale <f>       circuit scale factor (default 0.01 of paper node counts)");
        println!("  --pairs <n>       cap on pattern pairs per design (default 24)");
        println!("  --circuit <name>  limit to specific designs (repeatable)");
        println!("  --order <N>       polynomial order (default 3)");
        println!("  --threads <n>     engine worker threads (0 = auto, the default)");
        println!("  --skip-event-driven  skip the serial baseline (it dominates runtime)");
        println!("  --slots-ablation  stimuli-vs-operating-point slot split ablation");
        println!("  --order-sweep     engine runtime vs polynomial order ablation");
        return;
    }
    let scale: f64 = args.value("--scale").unwrap_or(0.01);
    let pairs_cap: usize = args.value("--pairs").unwrap_or(24);
    let order: usize = args.value("--order").unwrap_or(3);
    let threads: usize = args.value("--threads").map_or(0, |n: usize| n);
    let threads = SimOptions {
        threads,
        ..SimOptions::default()
    }
    .resolved_threads();
    let wanted = args.values("--circuit");
    let profiles: Vec<&CircuitProfile> = PAPER_PROFILES
        .iter()
        .filter(|p| wanted.is_empty() || wanted.iter().any(|w| w == p.name))
        .collect();

    let library = CellLibrary::nangate15_like();
    eprintln!(
        "table1: synthesizing {} designs at scale {scale} ...",
        profiles.len()
    );
    let netlists: Vec<Arc<avfs_netlist::Netlist>> = profiles
        .iter()
        .map(|p| Arc::new(p.synthesize(scale, &library).expect("synthesis succeeds")))
        .collect();

    eprintln!("table1: characterizing used cells (order N={order}) ...");
    let refs: Vec<&avfs_netlist::Netlist> = netlists.iter().map(Arc::as_ref).collect();
    let chars = characterize_used(&refs, &library, order);

    println!("# Table I — circuit statistics and simulation performance (V_DD = 0.8 V)");
    println!("# scale {scale}, pairs cap {pairs_cap}, polynomial order 2N with N={order}, {threads} thread(s)");
    println!(
        "{:<10} {:>9} {:>6} | {:>9} {:>7} | {:>9} | {:>9} {:>8} {:>7}",
        "Circuit", "Nodes", "Pairs", "ED Time", "MEPS", "[25]", "Proposed", "MEPS", "X"
    );

    for (profile, netlist) in profiles.iter().zip(&netlists) {
        let stats = NetlistStats::of(netlist);
        let annotation = Arc::new(chars.annotate(netlist).expect("all cells characterized"));
        let patterns = build_patterns(netlist, &annotation, profile, pairs_cap);
        let slot_list = slots::at_voltage(patterns.len(), 0.8);
        let opts = SimOptions {
            threads,
            ..SimOptions::default()
        };

        // Serial event-driven baseline.
        let (ed_time, ed_meps) = if args.flag("--skip-event-driven") {
            (None, 0.0)
        } else {
            let ed = EventDrivenSimulator::new(Arc::clone(netlist), Arc::clone(&annotation))
                .expect("positive delays from characterization");
            let run = ed.run(&patterns, &slot_list, false).expect("baseline runs");
            (Some(run.elapsed), run.meps())
        };

        // Parallel engine, static delays ([25]).
        let static_engine = Engine::new(
            Arc::clone(netlist),
            Arc::clone(&annotation),
            Arc::new(StaticModel::new(*chars.space())),
        )
        .expect("engine builds");
        let static_run = static_engine
            .run(&patterns, &slot_list, &opts)
            .expect("static engine runs");

        // Parallel engine, polynomial kernels (proposed).
        let poly_engine = Engine::new(
            Arc::clone(netlist),
            Arc::clone(&annotation),
            Arc::new(chars.model().clone()),
        )
        .expect("engine builds");
        let poly_run = poly_engine
            .run(&patterns, &slot_list, &opts)
            .expect("parametric engine runs");

        let name = if profile.false_paths_only {
            format!("{}*", profile.name)
        } else {
            profile.name.to_owned()
        };
        let speedup = ed_time
            .map(|t| t.as_secs_f64() / poly_run.elapsed.as_secs_f64().max(1e-9))
            .unwrap_or(0.0);
        println!(
            "{:<10} {:>9} {:>6} | {:>9} {:>7.2} | {:>9} | {:>9} {:>8.1} {:>7.1}",
            name,
            stats.nodes,
            patterns.len(),
            ed_time.map(fmt_runtime).unwrap_or_else(|| "-".into()),
            ed_meps,
            fmt_runtime(static_run.elapsed),
            fmt_runtime(poly_run.elapsed),
            poly_run.meps(),
            speedup,
        );
    }

    if args.flag("--slots-ablation") {
        slots_ablation(&netlists[0], &chars, pairs_cap, threads);
    }
    if args.flag("--order-sweep") {
        order_sweep(&netlists[0], &library, pairs_cap, threads);
    }
}

/// The paper's pattern recipe: pseudo-random transition pairs, topped off
/// with timing-aware patterns for the longest paths (unless the profile's
/// long paths are all false paths).
fn build_patterns(
    netlist: &Arc<avfs_netlist::Netlist>,
    annotation: &Arc<avfs_delay::TimingAnnotation>,
    profile: &CircuitProfile,
    pairs_cap: usize,
) -> PatternSet {
    let width = netlist.inputs().len();
    let count = profile.test_pairs.min(pairs_cap);
    let seed = 0xA5F5_0000 ^ profile.nodes as u64;
    let mut patterns = PatternSet::random(width, count, seed);
    if !profile.false_paths_only {
        let levels = avfs_netlist::Levelization::of(netlist).expect("acyclic");
        let k = 200.min(count.max(8));
        let paths = k_longest_paths(netlist, &levels, Some(annotation), k);
        let outcomes = generate_timing_aware(netlist, &levels, &paths, 4, seed ^ 0xFF);
        patterns.extend(collect_pairs(&outcomes).iter().cloned());
    }
    patterns
}

/// Fixed slot budget, varying the stimuli-vs-operating-points split
/// (Sec. IV.B: "trade-off arbitrarily between simulation of multiple
/// stimuli or multiple operating points").
fn slots_ablation(
    netlist: &Arc<avfs_netlist::Netlist>,
    chars: &avfs_delay::CharacterizedLibrary,
    pairs_cap: usize,
    threads: usize,
) {
    println!(
        "#\n# slot-split ablation on {} (fixed budget of slots)",
        netlist.name()
    );
    let annotation = Arc::new(chars.annotate(netlist).expect("annotation"));
    let engine = Engine::new(
        Arc::clone(netlist),
        Arc::clone(&annotation),
        Arc::new(chars.model().clone()),
    )
    .expect("engine builds");
    let budget = pairs_cap.max(16);
    println!(
        "{:>10} {:>10} {:>10} {:>9} {:>8}",
        "stimuli", "voltages", "slots", "time", "MEPS"
    );
    for voltages_count in [1usize, 2, 4, 8] {
        let stimuli = (budget / voltages_count).max(1);
        let patterns = PatternSet::random(netlist.inputs().len(), stimuli, 42);
        let voltages: Vec<f64> = (0..voltages_count)
            .map(|i| 0.55 + 0.55 * i as f64 / voltages_count.max(2) as f64)
            .collect();
        let slot_list = slots::cross(patterns.len(), &voltages);
        let opts = SimOptions {
            threads,
            ..SimOptions::default()
        };
        let run = engine.run(&patterns, &slot_list, &opts).expect("runs");
        println!(
            "{:>10} {:>10} {:>10} {:>9} {:>8.1}",
            stimuli,
            voltages_count,
            slot_list.len(),
            fmt_runtime(run.elapsed),
            run.meps()
        );
    }
}

/// Engine runtime versus polynomial order (the paper: "the runtime
/// overhead of the gate delay calculations showed no significant impact
/// even for higher degree polynomials").
fn order_sweep(
    netlist: &Arc<avfs_netlist::Netlist>,
    library: &Arc<CellLibrary>,
    pairs_cap: usize,
    threads: usize,
) {
    println!("#\n# polynomial-order ablation on {}", netlist.name());
    println!("{:>5} {:>9} {:>8}", "N", "time", "MEPS");
    let patterns = PatternSet::random(netlist.inputs().len(), pairs_cap.max(8), 7);
    for order in 1..=5usize {
        let chars = characterize_used(&[netlist.as_ref()], library, order);
        let annotation = Arc::new(chars.annotate(netlist).expect("annotation"));
        let engine = Engine::new(
            Arc::clone(netlist),
            annotation,
            Arc::new(chars.model().clone()),
        )
        .expect("engine builds");
        let slot_list = slots::at_voltage(patterns.len(), 0.7);
        let opts = SimOptions {
            threads,
            ..SimOptions::default()
        };
        let run = engine.run(&patterns, &slot_list, &opts).expect("runs");
        println!(
            "{:>5} {:>9} {:>8.1}",
            order,
            fmt_runtime(run.elapsed),
            run.meps()
        );
    }
}
