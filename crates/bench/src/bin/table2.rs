//! Table II — circuit timing characteristics under the voltage sweep.
//!
//! For each design: the STA longest path at the nominal corner (col 2),
//! the latest transition arrival time observed while simulating the whole
//! pattern set under each supply voltage (cols 3–8), and at 0.8 V the
//! relative deviation of the parametric simulation against a static-delay
//! run (the parenthesized percentage).
//!
//! All `patterns × voltages` combinations of one design run in a *single*
//! engine launch — the multi-operating-point parallelism that is the
//! paper's point.
//!
//! ```text
//! cargo run --release -p avfs-bench --bin table2 [-- --scale 0.01 --pairs 24]
//! ```

use avfs_atpg::PatternSet;
use avfs_bench::{characterize_used, fmt_ps, Args};
use avfs_circuits::{CircuitProfile, PAPER_PROFILES};
use avfs_core::{slots, sta, Engine, SimOptions};
use avfs_delay::StaticModel;
use avfs_netlist::CellLibrary;
use std::sync::Arc;

const SWEEP_VOLTAGES: [f64; 6] = [0.55, 0.6, 0.7, 0.8, 0.9, 1.1];

fn main() {
    let args = Args::capture();
    if args.flag("--help") {
        println!("table2: latest transition arrival times under voltage sweep");
        println!("  --scale <f>       circuit scale factor (default 0.01)");
        println!("  --pairs <n>       cap on pattern pairs per design (default 24)");
        println!("  --circuit <name>  limit to specific designs (repeatable)");
        println!("  --order <N>       polynomial order (default 3)");
        println!("  --threads <n>     engine worker threads (0 = auto, the default)");
        return;
    }
    let scale: f64 = args.value("--scale").unwrap_or(0.01);
    let pairs_cap: usize = args.value("--pairs").unwrap_or(24);
    let order: usize = args.value("--order").unwrap_or(3);
    let threads: usize = args.value("--threads").map_or(0, |n: usize| n);
    let threads = SimOptions {
        threads,
        ..SimOptions::default()
    }
    .resolved_threads();
    let wanted = args.values("--circuit");
    let profiles: Vec<&CircuitProfile> = PAPER_PROFILES
        .iter()
        .filter(|p| wanted.is_empty() || wanted.iter().any(|w| w == p.name))
        .collect();

    let library = CellLibrary::nangate15_like();
    eprintln!(
        "table2: synthesizing {} designs at scale {scale} ...",
        profiles.len()
    );
    let netlists: Vec<Arc<avfs_netlist::Netlist>> = profiles
        .iter()
        .map(|p| Arc::new(p.synthesize(scale, &library).expect("synthesis succeeds")))
        .collect();
    let refs: Vec<&avfs_netlist::Netlist> = netlists.iter().map(Arc::as_ref).collect();
    eprintln!("table2: characterizing used cells (order N={order}) ...");
    let chars = characterize_used(&refs, &library, order);

    println!("# Table II — circuit timing characteristics under voltage sweep");
    println!("# scale {scale}, pairs cap {pairs_cap}, order N={order}");
    print!("{:<10} {:>9}", "Circuit", "LongPath");
    for v in SWEEP_VOLTAGES {
        print!(" {v:>9}V");
    }
    println!(" {:>12}", "(vs static)");

    for (profile, netlist) in profiles.iter().zip(&netlists) {
        let annotation = Arc::new(chars.annotate(netlist).expect("all cells characterized"));
        let patterns = PatternSet::random(
            netlist.inputs().len(),
            profile.test_pairs.min(pairs_cap),
            0xBEEF ^ profile.nodes as u64,
        );
        let opts = SimOptions {
            threads,
            ..SimOptions::default()
        };

        // STA longest path at the nominal corner (col 2).
        let levels = avfs_netlist::Levelization::of(netlist).expect("acyclic");
        let sta_report = sta::longest_path(netlist, &levels, &annotation);

        // One launch: every pattern under every voltage.
        let engine = Engine::new(
            Arc::clone(netlist),
            Arc::clone(&annotation),
            Arc::new(chars.model().clone()),
        )
        .expect("engine builds");
        let run = engine
            .run(
                &patterns,
                &slots::cross(patterns.len(), &SWEEP_VOLTAGES),
                &opts,
            )
            .expect("sweep runs");

        // Static-delay reference at the nominal voltage.
        let static_engine = Engine::new(
            Arc::clone(netlist),
            Arc::clone(&annotation),
            Arc::new(StaticModel::new(*chars.space())),
        )
        .expect("engine builds");
        let static_run = static_engine
            .run(&patterns, &slots::at_voltage(patterns.len(), 0.8), &opts)
            .expect("static runs");

        let name = if profile.false_paths_only {
            format!("{}*", profile.name)
        } else {
            profile.name.to_owned()
        };
        print!("{:<10} {:>9}", name, fmt_ps(sta_report.longest_path_ps));
        for v in SWEEP_VOLTAGES {
            match run.latest_arrival_at(v) {
                Some(t) => print!(" {:>10}", fmt_ps(t)),
                None => print!(" {:>10}", "-"),
            }
        }
        let deviation = match (
            run.latest_arrival_at(0.8),
            static_run.latest_arrival_at(0.8),
        ) {
            (Some(a), Some(b)) if b > 0.0 => format!("({:+.2}%)", 100.0 * (a - b) / b),
            _ => "(-)".to_owned(),
        };
        println!(" {deviation:>12}");
    }
    println!("# paper shape: arrivals fall monotonically with V_DD; nominal deviation ~0.1%");
}
