//! Technology parameters of the synthetic 15 nm-class process.

/// Process parameters shared by all devices.
///
/// The numbers are chosen so that a unit-drive inverter with a ~2 fF load
/// at the nominal 0.8 V supply exhibits a propagation delay of roughly
/// 10 ps — the regime of the NanGate 15 nm cells behind the paper's
/// Table II (arrival times of hundreds of ps over tens of logic levels).
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Nominal supply voltage, V (the paper's `P_nom` uses 0.8 V).
    pub vdd_nominal: f64,
    /// NMOS threshold voltage, V.
    pub vth_n: f64,
    /// PMOS threshold voltage magnitude, V.
    pub vth_p: f64,
    /// Velocity-saturation index α of the α-power law (1 = fully
    /// velocity-saturated short channel, 2 = long channel quadratic).
    pub alpha: f64,
    /// NMOS transconductance, µA per unit width at `(V_gs−V_th) = 1 V`.
    pub k_n: f64,
    /// PMOS transconductance, µA per unit width.
    pub k_p: f64,
    /// Fraction of the overdrive at which the device saturates
    /// (`V_dsat = k_sat · (V_gs − V_th)^{α/2}`).
    pub k_sat: f64,
    /// Default input ramp (10 %–90 % slew) used during characterization, ps.
    pub input_slew_ps: f64,
    /// Additional effective-threshold fraction per extra series device
    /// (body effect in stacks).
    pub stack_vth_derate: f64,
    /// Current derating per stack position away from the output node
    /// (internal node charging).
    pub position_derate: f64,
    /// Junction temperature the parameters describe, °C.
    pub temp_c: f64,
}

/// Reference temperature of the nominal parameter set, °C.
pub const NOMINAL_TEMP_C: f64 = 27.0;

impl Technology {
    /// The default 15 nm-class process at 27 °C.
    pub fn nm15() -> Technology {
        Technology {
            vdd_nominal: 0.8,
            vth_n: 0.24,
            vth_p: 0.26,
            alpha: 1.35,
            k_n: 175.0,
            k_p: 118.0,
            k_sat: 0.9,
            input_slew_ps: 10.0,
            stack_vth_derate: 0.035,
            position_derate: 0.06,
            temp_c: NOMINAL_TEMP_C,
        }
    }

    /// Derives the process at another junction temperature — the PVT
    /// "T" axis the paper's introduction (and its references \[17\], \[21\])
    /// names alongside voltage. Two first-order effects:
    ///
    /// * carrier mobility falls as `(T/T₀)^(−1.5)` → transconductance
    ///   `k` shrinks with heat,
    /// * threshold voltages drop ~0.7 mV/K → overdrive grows with heat.
    ///
    /// At high supply the mobility term dominates (hotter = slower); near
    /// threshold the V_th term can win (hotter = *faster*), the
    /// temperature-inversion effect of near-threshold design.
    ///
    /// # Panics
    ///
    /// Panics for physically meaningless temperatures (≤ −273.15 °C).
    pub fn at_temperature(&self, temp_c: f64) -> Technology {
        assert!(temp_c > -273.15, "temperature below absolute zero");
        let t0_k = NOMINAL_TEMP_C + 273.15;
        let t_k = temp_c + 273.15;
        let mobility = (t_k / t0_k).powf(-1.5);
        let dvth = -0.0007 * (temp_c - self.temp_c);
        Technology {
            k_n: self.k_n * mobility / ((self.temp_c + 273.15) / t0_k).powf(-1.5),
            k_p: self.k_p * mobility / ((self.temp_c + 273.15) / t0_k).powf(-1.5),
            vth_n: (self.vth_n + dvth).max(0.05),
            vth_p: (self.vth_p + dvth).max(0.05),
            temp_c,
            ..self.clone()
        }
    }

    /// The minimum supply voltage at which the model is meaningful: both
    /// devices need usable overdrive.
    pub fn vdd_floor(&self) -> f64 {
        self.vth_n.max(self.vth_p) + 0.1
    }
}

impl Default for Technology {
    fn default() -> Self {
        Technology::nm15()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_plausible() {
        let t = Technology::nm15();
        assert!(t.vdd_nominal > t.vdd_floor());
        assert!(t.alpha >= 1.0 && t.alpha <= 2.0, "α-power law range");
        assert!(t.k_n > t.k_p, "NMOS drives more current per width");
        assert_eq!(Technology::default(), t);
    }

    #[test]
    fn floor_covers_paper_sweep() {
        // The paper sweeps down to 0.55 V; the model must be valid there.
        let t = Technology::nm15();
        assert!(t.vdd_floor() < 0.55);
    }

    #[test]
    fn hot_corner_parameters() {
        let nom = Technology::nm15();
        let hot = nom.at_temperature(125.0);
        assert_eq!(hot.temp_c, 125.0);
        assert!(hot.k_n < nom.k_n, "mobility falls with heat");
        assert!(hot.vth_n < nom.vth_n, "threshold drops with heat");
        // Round trip back to nominal recovers the original parameters.
        let back = hot.at_temperature(27.0);
        assert!((back.k_n - nom.k_n).abs() < 1e-9);
        assert!((back.vth_n - nom.vth_n).abs() < 1e-9);
    }

    #[test]
    fn cold_corner_parameters() {
        let nom = Technology::nm15();
        let cold = nom.at_temperature(-40.0);
        assert!(cold.k_n > nom.k_n, "mobility rises in the cold");
        assert!(cold.vth_n > nom.vth_n, "threshold rises in the cold");
        assert!(cold.vdd_floor() > nom.vdd_floor());
    }

    #[test]
    #[should_panic(expected = "absolute zero")]
    fn absurd_temperature_panics() {
        let _ = Technology::nm15().at_temperature(-300.0);
    }
}
