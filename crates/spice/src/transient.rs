//! Transient analysis of a single switching stage.
//!
//! Integrates the output-node ODE
//!
//! ```text
//! C · dV_out/dt = ± I_D(V_in(t), V_out)
//! ```
//!
//! with a linear input ramp, using 4th-order Runge–Kutta with a step sized
//! from the stage time constant, and measures the propagation delay as the
//! time between the input and output 50 % crossings — the standard
//! `.MEASURE TRIG v(in) VAL=vdd/2 TARG v(out) VAL=vdd/2` of a SPICE deck.

use crate::mosfet::{DeviceType, Mosfet};
use crate::technology::Technology;
use crate::SpiceError;

/// Description of one switching stage to simulate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stage {
    /// The equivalent conducting device (width already derated for stack).
    pub device: Mosfet,
    /// Total capacitance at the output node, fF (load + parasitic).
    pub cap_ff: f64,
    /// Supply voltage, V.
    pub vdd: f64,
    /// Input ramp duration (0 → V_DD), ps.
    pub slew_ps: f64,
}

/// Result of one transient run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientResult {
    /// 50 %-to-50 % propagation delay, ps.
    pub delay_ps: f64,
    /// Output 10 %–90 % transition time, ps.
    pub output_slew_ps: f64,
}

/// µA / fF → V/ps conversion: 1 µA into 1 fF slews 1 V per ns = 1e-3 V/ps.
const UA_PER_FF_TO_V_PER_PS: f64 = 1.0e-3;

/// Runs a transient analysis of `stage` and measures the propagation delay.
///
/// The output starts at the opposite rail and is driven toward the target
/// rail by the conducting device while the input ramps linearly across the
/// supply. For an NMOS stage the output falls from `vdd` to 0; for a PMOS
/// stage it rises from 0 to `vdd`.
///
/// # Errors
///
/// * [`SpiceError::InvalidOperatingPoint`] if `vdd` is at or below the
///   device threshold (the stage would never switch) or parameters are
///   non-finite/non-positive.
/// * [`SpiceError::NoConvergence`] if the integration budget is exhausted
///   before the measurement crossings (pathological configurations only).
pub fn simulate_stage(tech: &Technology, stage: &Stage) -> Result<TransientResult, SpiceError> {
    let vdd = stage.vdd;
    if !vdd.is_finite() || !stage.cap_ff.is_finite() || stage.cap_ff <= 0.0 {
        return Err(SpiceError::InvalidOperatingPoint {
            vdd,
            reason: "non-finite or non-positive stage parameters",
        });
    }
    if vdd <= stage.device.vth + 0.05 {
        return Err(SpiceError::InvalidOperatingPoint {
            vdd,
            reason: "supply voltage at or below device threshold",
        });
    }

    let falling = stage.device.device == DeviceType::Nmos;
    let v_half = vdd / 2.0;
    // Input 50 % crossing of the linear ramp.
    let t_in_cross = stage.slew_ps * 0.5;

    // Gate overdrive magnitude as a function of time: the input ramps from
    // the non-conducting rail to the conducting rail over slew_ps. For the
    // NMOS (output falls) the input rises 0→vdd so |Vgs| = Vin; for the
    // PMOS (output rises) the input falls vdd→0 so |Vgs| = vdd − Vin. Both
    // give the same ramp in magnitude.
    let vgs_at = |t: f64| -> f64 {
        if stage.slew_ps <= 0.0 {
            vdd
        } else {
            (vdd * t / stage.slew_ps).clamp(0.0, vdd)
        }
    };

    // Step size from the stage time constant at full drive.
    let i_full = stage.device.saturation_current(tech, vdd).max(1e-9);
    let tau_ps = stage.cap_ff * vdd / (i_full * UA_PER_FF_TO_V_PER_PS);
    let dt = (tau_ps / 400.0)
        .min(stage.slew_ps.max(0.1) / 40.0)
        .max(1e-4);
    // Budget: enough for very slow near-threshold corners.
    let max_steps = 4_000_000usize;

    // State: output voltage. vds magnitude is |V_out − conducting rail|.
    let mut v_out = if falling { vdd } else { 0.0 };
    let mut t = 0.0f64;

    // Measurement bookkeeping.
    let mut t_out_cross = None;
    let mut t_10 = None;
    let mut t_90 = None;
    let (lo_mark, hi_mark) = (0.1 * vdd, 0.9 * vdd);

    let dv_dt = |t: f64, v: f64| -> f64 {
        let vgs = vgs_at(t);
        let vds = if falling { v } else { vdd - v };
        let i = stage.device.drain_current(tech, vgs, vds);
        let slope = i * UA_PER_FF_TO_V_PER_PS / stage.cap_ff;
        if falling {
            -slope
        } else {
            slope
        }
    };

    let target_reached = |v: f64| -> bool {
        if falling {
            v <= 0.02 * vdd
        } else {
            v >= 0.98 * vdd
        }
    };

    for step in 0..max_steps {
        let v_prev = v_out;
        let t_prev = t;
        // Classic RK4.
        let k1 = dv_dt(t, v_out);
        let k2 = dv_dt(t + dt / 2.0, v_out + dt / 2.0 * k1);
        let k3 = dv_dt(t + dt / 2.0, v_out + dt / 2.0 * k2);
        let k4 = dv_dt(t + dt, v_out + dt * k3);
        v_out += dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
        v_out = v_out.clamp(0.0, vdd);
        t += dt;

        // Record threshold crossings with linear interpolation.
        let crossed = |mark: f64, slot: &mut Option<f64>| {
            if slot.is_none() {
                let before = if falling {
                    v_prev > mark
                } else {
                    v_prev < mark
                };
                let after = if falling {
                    v_out <= mark
                } else {
                    v_out >= mark
                };
                if before && after {
                    let frac = if (v_out - v_prev).abs() < 1e-15 {
                        1.0
                    } else {
                        (mark - v_prev) / (v_out - v_prev)
                    };
                    *slot = Some(t_prev + frac.clamp(0.0, 1.0) * dt);
                }
            }
        };
        crossed(v_half, &mut t_out_cross);
        if falling {
            crossed(hi_mark, &mut t_90);
            crossed(lo_mark, &mut t_10);
        } else {
            crossed(lo_mark, &mut t_10);
            crossed(hi_mark, &mut t_90);
        }

        if target_reached(v_out) && t_out_cross.is_some() {
            break;
        }
        if step == max_steps - 1 {
            return Err(SpiceError::NoConvergence { reached_ps: t });
        }
    }

    let t_out = t_out_cross.ok_or(SpiceError::NoConvergence { reached_ps: t })?;
    let slew = match (t_10, t_90) {
        (Some(a), Some(b)) => (b - a).abs(),
        _ => 0.0,
    };
    Ok(TransientResult {
        delay_ps: t_out - t_in_cross,
        output_slew_ps: slew,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Technology {
        Technology::nm15()
    }

    fn stage(vdd: f64, cap: f64, width: f64, falling: bool) -> Stage {
        let t = tech();
        Stage {
            device: if falling {
                Mosfet::nmos(&t, width)
            } else {
                Mosfet::pmos(&t, width)
            },
            cap_ff: cap,
            vdd,
            slew_ps: t.input_slew_ps,
        }
    }

    #[test]
    fn nominal_inverter_delay_in_picosecond_range() {
        let t = tech();
        let r = simulate_stage(&t, &stage(0.8, 2.0, 1.0, true)).unwrap();
        assert!(
            r.delay_ps > 1.0 && r.delay_ps < 50.0,
            "nominal fall delay {} ps outside plausible range",
            r.delay_ps
        );
        assert!(r.output_slew_ps > 0.0);
    }

    #[test]
    fn delay_increases_at_low_voltage() {
        let t = tech();
        let d_nom = simulate_stage(&t, &stage(0.8, 2.0, 1.0, true))
            .unwrap()
            .delay_ps;
        let d_low = simulate_stage(&t, &stage(0.55, 2.0, 1.0, true))
            .unwrap()
            .delay_ps;
        let d_high = simulate_stage(&t, &stage(1.1, 2.0, 1.0, true))
            .unwrap()
            .delay_ps;
        assert!(d_low > d_nom && d_nom > d_high);
        // The paper's Table II shows ~30–40 % swing from 0.55 V to 0.8 V;
        // the model should be strongly non-linear in that range.
        assert!(d_low / d_nom > 1.2, "ratio {}", d_low / d_nom);
    }

    #[test]
    fn delay_increases_with_load() {
        let t = tech();
        let d_small = simulate_stage(&t, &stage(0.8, 0.5, 1.0, true))
            .unwrap()
            .delay_ps;
        let d_big = simulate_stage(&t, &stage(0.8, 128.0, 1.0, true))
            .unwrap()
            .delay_ps;
        assert!(d_big > 10.0 * d_small);
    }

    #[test]
    fn delay_scales_inverse_with_width() {
        let t = tech();
        let d1 = simulate_stage(&t, &stage(0.8, 8.0, 1.0, true))
            .unwrap()
            .delay_ps;
        let d4 = simulate_stage(&t, &stage(0.8, 8.0, 4.0, true))
            .unwrap()
            .delay_ps;
        let ratio = d1 / d4;
        assert!(
            (3.0..5.0).contains(&ratio),
            "4× width should give ≈4× speed, got {ratio}"
        );
    }

    #[test]
    fn rise_slower_than_fall_at_equal_width() {
        let t = tech();
        let fall = simulate_stage(&t, &stage(0.8, 4.0, 1.0, true))
            .unwrap()
            .delay_ps;
        let rise = simulate_stage(&t, &stage(0.8, 4.0, 1.0, false))
            .unwrap()
            .delay_ps;
        assert!(
            rise > fall,
            "PMOS (k_p < k_n) must be slower: {rise} vs {fall}"
        );
    }

    #[test]
    fn subthreshold_supply_rejected() {
        let t = tech();
        assert!(matches!(
            simulate_stage(&t, &stage(0.2, 2.0, 1.0, true)),
            Err(SpiceError::InvalidOperatingPoint { .. })
        ));
    }

    #[test]
    fn bad_cap_rejected() {
        let t = tech();
        let mut s = stage(0.8, 2.0, 1.0, true);
        s.cap_ff = 0.0;
        assert!(simulate_stage(&t, &s).is_err());
        s.cap_ff = f64::NAN;
        assert!(simulate_stage(&t, &s).is_err());
    }

    #[test]
    fn zero_slew_step_input_works() {
        let t = tech();
        let mut s = stage(0.8, 2.0, 1.0, true);
        s.slew_ps = 0.0;
        let r = simulate_stage(&t, &s).unwrap();
        assert!(r.delay_ps > 0.0);
    }

    #[test]
    fn matches_rc_estimate_order_of_magnitude() {
        // Analytic sanity: delay ≈ C·V/2 / I_sat within a small factor.
        let t = tech();
        let s = stage(0.8, 16.0, 1.0, true);
        let i = s.device.saturation_current(&t, 0.8);
        let est = s.cap_ff * 0.4 / (i * 1e-3);
        let r = simulate_stage(&t, &s).unwrap();
        assert!(
            r.delay_ps > 0.3 * est && r.delay_ps < 3.0 * est,
            "delay {} vs RC estimate {est}",
            r.delay_ps
        );
    }
}
