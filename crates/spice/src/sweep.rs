//! Parameter-sweep harness (Fig. 1, step A).
//!
//! Runs the transient characterization over a grid of operating points
//! `(V_DD, C_load)` and collects the resulting delay surface. The paper's
//! sweep is `V_DD ∈ [0.55 V, 1.1 V]` in 0.05 V steps (nominal 0.8 V) with
//! loads `2^i fF, i = −1 … 7`; [`SweepConfig::paper`] reproduces it.

use crate::characterize::pin_delay_ps;
use crate::technology::Technology;
use crate::SpiceError;
use avfs_netlist::library::{Cell, Polarity};

/// The operating-point grid to characterize.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Supply voltages, V (strictly increasing).
    pub voltages: Vec<f64>,
    /// Load capacitances, fF (strictly increasing, positive).
    pub loads_ff: Vec<f64>,
    /// The nominal supply voltage (must be on the grid).
    pub nominal_vdd: f64,
}

impl SweepConfig {
    /// The paper's sweep: 0.55–1.1 V in 0.05 V steps, loads 0.5–128 fF in
    /// powers of two, nominal 0.8 V.
    pub fn paper() -> SweepConfig {
        let voltages: Vec<f64> = (0..12).map(|i| 0.55 + 0.05 * i as f64).collect();
        let loads_ff: Vec<f64> = (-1..=7).map(|i| (i as f64).exp2()).collect();
        SweepConfig {
            voltages,
            loads_ff,
            nominal_vdd: 0.8,
        }
    }

    /// A coarse 5 × 5 sweep for fast tests.
    pub fn coarse() -> SweepConfig {
        SweepConfig {
            voltages: vec![0.55, 0.7, 0.8, 0.95, 1.1],
            loads_ff: vec![0.5, 2.0, 8.0, 32.0, 128.0],
            nominal_vdd: 0.8,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidSweep`] for empty/unsorted axes or a
    /// nominal voltage off the grid.
    pub fn validate(&self) -> Result<(), SpiceError> {
        if self.voltages.len() < 2 || self.loads_ff.len() < 2 {
            return Err(SpiceError::InvalidSweep {
                reason: "need at least two voltages and two loads",
            });
        }
        if !self.voltages.windows(2).all(|w| w[0] < w[1]) {
            return Err(SpiceError::InvalidSweep {
                reason: "voltages must be strictly increasing",
            });
        }
        if !self.loads_ff.windows(2).all(|w| w[0] < w[1]) || self.loads_ff[0] <= 0.0 {
            return Err(SpiceError::InvalidSweep {
                reason: "loads must be positive and strictly increasing",
            });
        }
        if !self
            .voltages
            .iter()
            .any(|&v| (v - self.nominal_vdd).abs() < 1e-9)
        {
            return Err(SpiceError::InvalidSweep {
                reason: "nominal voltage must be one of the swept voltages",
            });
        }
        Ok(())
    }

    /// The voltage interval `[V_min, V_max]`.
    pub fn voltage_range(&self) -> (f64, f64) {
        (self.voltages[0], *self.voltages.last().expect("validated"))
    }

    /// The load interval `[C_min, C_max]` in fF.
    pub fn load_range(&self) -> (f64, f64) {
        (self.loads_ff[0], *self.loads_ff.last().expect("validated"))
    }
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig::paper()
    }
}

/// The measured delay surface of one (cell, pin, polarity) over the sweep
/// grid, in ps, stored row-major by voltage then load.
#[derive(Debug, Clone, PartialEq)]
pub struct DelaySurface {
    /// Swept voltages, V.
    pub voltages: Vec<f64>,
    /// Swept loads, fF.
    pub loads_ff: Vec<f64>,
    /// `delays_ps[i * loads.len() + j]` = delay at `(voltages[i],
    /// loads_ff[j])`.
    pub delays_ps: Vec<f64>,
}

impl DelaySurface {
    /// The delay at grid indices `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn at(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.voltages.len() && j < self.loads_ff.len());
        self.delays_ps[i * self.loads_ff.len() + j]
    }

    /// The delay at the grid point closest to `(vdd, c_ff)`.
    pub fn at_point(&self, vdd: f64, c_ff: f64) -> f64 {
        let i = nearest(&self.voltages, vdd);
        let j = nearest(&self.loads_ff, c_ff);
        self.at(i, j)
    }

    /// Iterates `(vdd, c_ff, delay_ps)` samples.
    pub fn samples(&self) -> impl Iterator<Item = (f64, f64, f64)> + '_ {
        let w = self.loads_ff.len();
        self.delays_ps
            .iter()
            .enumerate()
            .map(move |(k, &d)| (self.voltages[k / w], self.loads_ff[k % w], d))
    }
}

fn nearest(axis: &[f64], x: f64) -> usize {
    axis.iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| (*a - x).abs().total_cmp(&(*b - x).abs()))
        .map(|(i, _)| i)
        .expect("axis is non-empty")
}

/// Sweeps one (cell, pin, polarity) over the configured grid.
///
/// This is step A of Fig. 1; the paper notes the SPICE sweeps "took few
/// minutes for each cell" — this substitute takes milliseconds, which is
/// what makes the full Fig. 4 experiment tractable in CI.
///
/// # Errors
///
/// Returns [`SpiceError::InvalidSweep`] for a bad configuration and
/// propagates transient-analysis errors.
pub fn sweep_pin(
    tech: &Technology,
    cell: &Cell,
    pin: usize,
    polarity: Polarity,
    config: &SweepConfig,
) -> Result<DelaySurface, SpiceError> {
    sweep_pin_metered(tech, cell, pin, polarity, config, None)
}

/// [`sweep_pin`] with optional instrumentation: when `metrics` is
/// present, each call records the phase `"spice/sweep"` and adds the
/// number of simulated grid points to the `"spice.transient_points"`
/// counter.
///
/// # Errors
///
/// Identical to [`sweep_pin`].
pub fn sweep_pin_metered(
    tech: &Technology,
    cell: &Cell,
    pin: usize,
    polarity: Polarity,
    config: &SweepConfig,
    metrics: Option<&avfs_obs::Metrics>,
) -> Result<DelaySurface, SpiceError> {
    let span = metrics.map(|m| m.span("spice/sweep"));
    config.validate()?;
    let mut delays_ps = Vec::with_capacity(config.voltages.len() * config.loads_ff.len());
    for &v in &config.voltages {
        for &c in &config.loads_ff {
            delays_ps.push(pin_delay_ps(tech, cell, pin, polarity, v, c)?);
        }
    }
    if let Some(m) = metrics {
        m.add("spice.transient_points", delays_ps.len() as u64);
    }
    if let Some(span) = span {
        span.finish();
    }
    Ok(DelaySurface {
        voltages: config.voltages.clone(),
        loads_ff: config.loads_ff.clone(),
        delays_ps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_netlist::CellLibrary;

    #[test]
    fn paper_sweep_matches_section_v() {
        let s = SweepConfig::paper();
        s.validate().unwrap();
        assert_eq!(s.voltages.len(), 12);
        assert!((s.voltages[0] - 0.55).abs() < 1e-12);
        assert!((s.voltages[11] - 1.1).abs() < 1e-9);
        assert_eq!(s.loads_ff.len(), 9);
        assert!((s.loads_ff[0] - 0.5).abs() < 1e-12);
        assert!((s.loads_ff[8] - 128.0).abs() < 1e-12);
        assert_eq!(s.voltage_range(), (0.55, s.voltages[11]));
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut s = SweepConfig::coarse();
        s.voltages = vec![0.8];
        assert!(s.validate().is_err());

        let mut s = SweepConfig::coarse();
        s.voltages.reverse();
        assert!(s.validate().is_err());

        let mut s = SweepConfig::coarse();
        s.loads_ff[0] = -1.0;
        assert!(s.validate().is_err());

        let mut s = SweepConfig::coarse();
        s.nominal_vdd = 0.81;
        assert!(s.validate().is_err());
    }

    #[test]
    fn sweep_surface_shape_and_monotonicity() {
        let tech = Technology::nm15();
        let lib = CellLibrary::nangate15_like();
        let nor = lib.cell(lib.find("NOR2_X2").unwrap());
        let cfg = SweepConfig::coarse();
        let surf = sweep_pin(&tech, nor, 0, Polarity::Rise, &cfg).unwrap();
        assert_eq!(surf.delays_ps.len(), 25);
        // Monotone: delay decreases with voltage (rows) and increases with
        // load (columns).
        for i in 0..cfg.voltages.len() {
            for j in 1..cfg.loads_ff.len() {
                assert!(surf.at(i, j) > surf.at(i, j - 1));
            }
        }
        for j in 0..cfg.loads_ff.len() {
            for i in 1..cfg.voltages.len() {
                assert!(surf.at(i, j) < surf.at(i - 1, j));
            }
        }
    }

    #[test]
    fn at_point_picks_nearest() {
        let surf = DelaySurface {
            voltages: vec![0.5, 1.0],
            loads_ff: vec![1.0, 2.0],
            delays_ps: vec![10.0, 20.0, 30.0, 40.0],
        };
        assert_eq!(surf.at_point(0.55, 1.1), 10.0);
        assert_eq!(surf.at_point(0.99, 1.9), 40.0);
        let all: Vec<_> = surf.samples().collect();
        assert_eq!(all.len(), 4);
        assert_eq!(all[2], (1.0, 1.0, 30.0));
    }
}
