//! Cell-level delay extraction: maps a library cell's (pin, polarity) onto
//! equivalent switching stages and measures the pin-to-pin delay.

use crate::mosfet::Mosfet;
use crate::technology::Technology;
use crate::transient::{simulate_stage, Stage};
use crate::SpiceError;
use avfs_netlist::library::{Cell, Polarity};

/// Measures the pin-to-pin propagation delay of `cell` from input `pin` to
/// the output for the given output `polarity`, at supply `vdd` (V) with
/// external load `c_load_ff` (fF). Returns picoseconds.
///
/// The cell is reduced to one or two equivalent stages using the library's
/// sizing data:
///
/// * the conducting network becomes a single α-power device with the
///   effective width of the path (already stack-divided), a body-effect
///   threshold raise per extra series device, and a current derating per
///   stack position of the switching pin;
/// * the output stage drives `c_load + c_parasitic`;
/// * two-stage cells (AND, OR, BUF, XOR, MUX) add the first stage driving
///   an internal node sized from the cell's parasitics, with the opposite
///   transition polarity.
///
/// # Errors
///
/// Propagates [`SpiceError::InvalidOperatingPoint`] /
/// [`SpiceError::NoConvergence`] from the transient engine.
///
/// # Panics
///
/// Panics if `pin` is out of range for the cell (consistent with
/// [`Cell::pin_drive`]).
pub fn pin_delay_ps(
    tech: &Technology,
    cell: &Cell,
    pin: usize,
    polarity: Polarity,
    vdd: f64,
    c_load_ff: f64,
) -> Result<f64, SpiceError> {
    let drive = cell.pin_drive(pin, polarity);
    let out_cap = c_load_ff + cell.parasitic_cap_ff();
    let mut total = output_stage_delay_ps(
        tech,
        drive.width,
        drive.stack,
        drive.position,
        polarity,
        vdd,
        out_cap,
    )?;

    if drive.stages > 1 {
        // First stage: inverting core driving the internal node. Its
        // transition polarity is the opposite of the output's, and its
        // load is the internal parasitic plus the output stage's gate.
        let internal_polarity = match polarity {
            Polarity::Rise => Polarity::Fall,
            Polarity::Fall => Polarity::Rise,
        };
        let internal_cap = (0.8 * cell.parasitic_cap_ff()).max(0.2);
        // The internal stage runs at ~70 % of the cell's drive (first
        // stage devices are smaller).
        total += output_stage_delay_ps(
            tech,
            0.7 * drive.width.max(0.5),
            drive.stack,
            drive.position,
            internal_polarity,
            vdd,
            internal_cap,
        )?;
    }
    Ok(total)
}

/// Delay of a single equivalent stage, ps.
fn output_stage_delay_ps(
    tech: &Technology,
    width: f64,
    stack: u8,
    position: u8,
    polarity: Polarity,
    vdd: f64,
    cap_ff: f64,
) -> Result<f64, SpiceError> {
    // Body effect: threshold rises with stack depth.
    let vth_scale = 1.0 + tech.stack_vth_derate * (stack.saturating_sub(1)) as f64;
    // Internal-node charging: current derates with switching-pin position.
    let width_eff = width / (1.0 + tech.position_derate * position as f64);
    let device = match polarity {
        Polarity::Fall => Mosfet {
            vth: tech.vth_n * vth_scale,
            ..Mosfet::nmos(tech, width_eff)
        },
        Polarity::Rise => Mosfet {
            vth: tech.vth_p * vth_scale,
            ..Mosfet::pmos(tech, width_eff)
        },
    };
    let result = simulate_stage(
        tech,
        &Stage {
            device,
            cap_ff,
            vdd,
            slew_ps: tech.input_slew_ps,
        },
    )?;
    Ok(result.delay_ps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_netlist::CellLibrary;

    fn setup() -> (Technology, std::sync::Arc<CellLibrary>) {
        (Technology::nm15(), CellLibrary::nangate15_like())
    }

    #[test]
    fn inverter_delays_plausible() {
        let (tech, lib) = setup();
        let inv = lib.cell(lib.find("INV_X1").unwrap());
        let fall = pin_delay_ps(&tech, inv, 0, Polarity::Fall, 0.8, 2.0).unwrap();
        let rise = pin_delay_ps(&tech, inv, 0, Polarity::Rise, 0.8, 2.0).unwrap();
        assert!(fall > 1.0 && fall < 60.0, "fall {fall}");
        assert!(
            rise > fall,
            "rise should be slower (PMOS), {rise} vs {fall}"
        );
    }

    #[test]
    fn voltage_dependence_is_nonlinear_and_monotone() {
        let (tech, lib) = setup();
        let nand = lib.cell(lib.find("NAND2_X1").unwrap());
        let mut prev = f64::INFINITY;
        let mut deltas = Vec::new();
        for v in [0.55, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1] {
            let d = pin_delay_ps(&tech, nand, 0, Polarity::Fall, v, 4.0).unwrap();
            assert!(d < prev, "delay must fall with rising voltage at {v} V");
            if prev.is_finite() {
                deltas.push(prev - d);
            }
            prev = d;
        }
        // Non-linear: improvements shrink as the voltage rises.
        assert!(
            deltas.first().unwrap() > deltas.last().unwrap(),
            "expected diminishing returns: {deltas:?}"
        );
    }

    #[test]
    fn load_dependence_monotone() {
        let (tech, lib) = setup();
        let nor = lib.cell(lib.find("NOR2_X2").unwrap());
        let mut prev = 0.0;
        for c in [0.5, 1.0, 2.0, 8.0, 32.0, 128.0] {
            let d = pin_delay_ps(&tech, nor, 0, Polarity::Rise, 0.8, c).unwrap();
            assert!(d > prev, "delay must grow with load at {c} fF");
            prev = d;
        }
    }

    #[test]
    fn inner_pins_slower() {
        let (tech, lib) = setup();
        let nand3 = lib.cell(lib.find("NAND3_X1").unwrap());
        let d_outer = pin_delay_ps(&tech, nand3, 0, Polarity::Fall, 0.8, 4.0).unwrap();
        let d_inner = pin_delay_ps(&tech, nand3, 2, Polarity::Fall, 0.8, 4.0).unwrap();
        assert!(d_inner > d_outer, "{d_inner} vs {d_outer}");
    }

    #[test]
    fn stronger_drive_is_faster() {
        let (tech, lib) = setup();
        let x1 = lib.cell(lib.find("NAND2_X1").unwrap());
        let x4 = lib.cell(lib.find("NAND2_X4").unwrap());
        let d1 = pin_delay_ps(&tech, x1, 0, Polarity::Fall, 0.8, 16.0).unwrap();
        let d4 = pin_delay_ps(&tech, x4, 0, Polarity::Fall, 0.8, 16.0).unwrap();
        assert!(d4 < d1 / 2.0, "X4 should be much faster into a fixed load");
    }

    #[test]
    fn two_stage_cells_slower_than_single_stage() {
        let (tech, lib) = setup();
        let and2 = lib.cell(lib.find("AND2_X1").unwrap());
        let nand2 = lib.cell(lib.find("NAND2_X1").unwrap());
        let d_and = pin_delay_ps(&tech, and2, 0, Polarity::Rise, 0.8, 4.0).unwrap();
        let d_nand = pin_delay_ps(&tech, nand2, 0, Polarity::Rise, 0.8, 4.0).unwrap();
        assert!(d_and > d_nand, "AND = NAND + INV must be slower");
    }

    #[test]
    fn temperature_slows_at_high_supply_more_than_near_threshold() {
        // The temperature-inversion trend: heating costs more delay at
        // high overdrive (mobility-limited) than near threshold (where
        // the dropping V_th claws back overdrive).
        let (nom, lib) = setup();
        let hot = nom.at_temperature(125.0);
        let inv = lib.cell(lib.find("INV_X1").unwrap());
        let slowdown = |v: f64| {
            let d_nom = pin_delay_ps(&nom, inv, 0, Polarity::Fall, v, 4.0).unwrap();
            let d_hot = pin_delay_ps(&hot, inv, 0, Polarity::Fall, v, 4.0).unwrap();
            d_hot / d_nom
        };
        let low = slowdown(0.55);
        let high = slowdown(1.1);
        assert!(high > 1.0, "hot silicon is slower at full supply ({high})");
        assert!(
            low < high,
            "near threshold the slowdown must shrink (inversion trend): {low} vs {high}"
        );
    }

    #[test]
    fn all_cells_characterizable_at_corners() {
        let (tech, lib) = setup();
        for (_, cell) in lib.iter() {
            for pin in 0..cell.num_inputs() {
                for polarity in Polarity::both() {
                    for &(v, c) in &[(0.55, 0.5), (1.1, 128.0)] {
                        let d =
                            pin_delay_ps(&tech, cell, pin, polarity, v, c).unwrap_or_else(|e| {
                                panic!("{} pin {pin} {polarity} at ({v},{c}): {e}", cell.name())
                            });
                        assert!(d.is_finite() && d > 0.0);
                    }
                }
            }
        }
    }
}
