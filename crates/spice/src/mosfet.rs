//! The α-power-law MOSFET model (Sakurai–Newton).
//!
//! Drain current of a device with effective width `w` (unit widths):
//!
//! ```text
//! V_ov   = V_gs − V_th                       (overdrive)
//! I_dsat = w · k · V_ov^α                    (saturation)
//! V_dsat = k_sat · V_ov^{α/2}                (saturation voltage)
//! I_d    = I_dsat · (2 − V_ds/V_dsat) · (V_ds/V_dsat)   for V_ds < V_dsat
//! ```
//!
//! The model is exactly the origin of the paper's Eq. 1: the time to move
//! charge `C·V_DD` at current `∝ (V_DD − V_th)^α` gives
//! `τ ∝ V_DD/(V_DD − V_th)^α`.

use crate::technology::Technology;

/// Device polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceType {
    /// N-channel (pull-down).
    Nmos,
    /// P-channel (pull-up).
    Pmos,
}

/// One equivalent MOSFET with an effective width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mosfet {
    /// Device polarity.
    pub device: DeviceType,
    /// Effective channel width in unit widths (already divided by the
    /// series stack depth by the caller).
    pub width: f64,
    /// Effective threshold voltage, V (stack body effect folded in).
    pub vth: f64,
}

impl Mosfet {
    /// An NMOS with the technology's nominal threshold.
    pub fn nmos(tech: &Technology, width: f64) -> Mosfet {
        Mosfet {
            device: DeviceType::Nmos,
            width,
            vth: tech.vth_n,
        }
    }

    /// A PMOS with the technology's nominal threshold (magnitude).
    pub fn pmos(tech: &Technology, width: f64) -> Mosfet {
        Mosfet {
            device: DeviceType::Pmos,
            width,
            vth: tech.vth_p,
        }
    }

    /// Drain current in µA for gate-overdrive-relevant voltages given as
    /// magnitudes: `vgs` is `|V_gs|` and `vds` is `|V_ds|`.
    ///
    /// Returns 0 in cut-off (`vgs ≤ vth`). Negative inputs are clamped.
    pub fn drain_current(&self, tech: &Technology, vgs: f64, vds: f64) -> f64 {
        let vgs = vgs.max(0.0);
        let vds = vds.max(0.0);
        let vov = vgs - self.vth;
        if vov <= 0.0 || vds == 0.0 {
            return 0.0;
        }
        let k = match self.device {
            DeviceType::Nmos => tech.k_n,
            DeviceType::Pmos => tech.k_p,
        };
        let idsat = self.width * k * vov.powf(tech.alpha);
        let vdsat = tech.k_sat * vov.powf(tech.alpha / 2.0);
        if vds >= vdsat {
            idsat
        } else {
            let x = vds / vdsat;
            idsat * (2.0 - x) * x
        }
    }

    /// Saturation current in µA at gate overdrive `vgs`.
    pub fn saturation_current(&self, tech: &Technology, vgs: f64) -> f64 {
        // Saturation is reached for any vds ≥ vdsat; use a large vds.
        self.drain_current(tech, vgs, 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tech() -> Technology {
        Technology::nm15()
    }

    #[test]
    fn cutoff_below_threshold() {
        let t = tech();
        let m = Mosfet::nmos(&t, 1.0);
        assert_eq!(m.drain_current(&t, t.vth_n, 0.5), 0.0);
        assert_eq!(m.drain_current(&t, t.vth_n - 0.1, 0.5), 0.0);
        assert_eq!(m.drain_current(&t, -1.0, 0.5), 0.0);
    }

    #[test]
    fn zero_vds_means_zero_current() {
        let t = tech();
        let m = Mosfet::nmos(&t, 1.0);
        assert_eq!(m.drain_current(&t, 0.8, 0.0), 0.0);
    }

    #[test]
    fn saturation_current_matches_alpha_power() {
        let t = tech();
        let m = Mosfet::nmos(&t, 2.0);
        let vgs = 0.8;
        let expect = 2.0 * t.k_n * (vgs - t.vth_n).powf(t.alpha);
        assert!((m.saturation_current(&t, vgs) - expect).abs() < 1e-9);
    }

    #[test]
    fn linear_region_below_saturation() {
        let t = tech();
        let m = Mosfet::nmos(&t, 1.0);
        let vgs = 0.8;
        let vov = vgs - t.vth_n;
        let vdsat = t.k_sat * vov.powf(t.alpha / 2.0);
        let i_half = m.drain_current(&t, vgs, vdsat / 2.0);
        let i_sat = m.saturation_current(&t, vgs);
        // At vds = vdsat/2 the parabolic profile gives (2 − 0.5)·0.5 = 0.75.
        assert!((i_half / i_sat - 0.75).abs() < 1e-9);
        assert!(i_half < i_sat);
    }

    #[test]
    fn continuity_at_saturation_boundary() {
        let t = tech();
        let m = Mosfet::pmos(&t, 1.5);
        let vgs = 0.7;
        let vov = vgs - t.vth_p;
        let vdsat = t.k_sat * vov.powf(t.alpha / 2.0);
        let below = m.drain_current(&t, vgs, vdsat * (1.0 - 1e-9));
        let above = m.drain_current(&t, vgs, vdsat * (1.0 + 1e-9));
        assert!((below - above).abs() / above < 1e-6);
    }

    #[test]
    fn pmos_weaker_than_nmos_at_same_width() {
        let t = tech();
        let n = Mosfet::nmos(&t, 1.0);
        let p = Mosfet::pmos(&t, 1.0);
        assert!(p.saturation_current(&t, 0.8) < n.saturation_current(&t, 0.8));
    }

    proptest! {
        #[test]
        fn current_monotone_in_vgs(
            vgs1 in 0.3f64..1.2, vgs2 in 0.3f64..1.2, vds in 0.01f64..1.2,
        ) {
            let t = tech();
            let m = Mosfet::nmos(&t, 1.0);
            let (lo, hi) = if vgs1 < vgs2 { (vgs1, vgs2) } else { (vgs2, vgs1) };
            prop_assert!(m.drain_current(&t, lo, vds) <= m.drain_current(&t, hi, vds) + 1e-12);
        }

        #[test]
        fn current_monotone_in_vds(
            vgs in 0.4f64..1.2, vds1 in 0.0f64..1.2, vds2 in 0.0f64..1.2,
        ) {
            let t = tech();
            let m = Mosfet::nmos(&t, 1.0);
            let (lo, hi) = if vds1 < vds2 { (vds1, vds2) } else { (vds2, vds1) };
            prop_assert!(m.drain_current(&t, vgs, lo) <= m.drain_current(&t, vgs, hi) + 1e-12);
        }

        #[test]
        fn current_scales_with_width(
            vgs in 0.4f64..1.2, vds in 0.01f64..1.2, w in 0.5f64..8.0,
        ) {
            let t = tech();
            let unit = Mosfet::nmos(&t, 1.0).drain_current(&t, vgs, vds);
            let scaled = Mosfet::nmos(&t, w).drain_current(&t, vgs, vds);
            prop_assert!((scaled - w * unit).abs() < 1e-9 * (1.0 + scaled));
        }
    }
}
