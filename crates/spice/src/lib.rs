//! Transistor-level cell characterization — the SPICE substitute.
//!
//! The paper extracts pin-to-pin propagation delays "from SPICE transient
//! analysis with parameter sweeps over a finite set of operating points"
//! using a commercial simulator on the NanGate 15 nm library. Neither the
//! tool nor the library is redistributable, so this crate implements the
//! smallest electrical simulator that preserves what the downstream
//! regression must learn:
//!
//! * an **α-power-law MOSFET model** (Sakurai–Newton) whose drain current
//!   captures the non-linear supply-voltage dependence of Eq. 1,
//!   `τ ∝ V_DD / (V_DD − V_th)^α`,
//! * a **transient analysis** integrating the nonlinear output-stage ODE
//!   `C·dV/dt = ±I_D(V_in(t), V_out)` with a ramped input, measuring the
//!   50 %-crossing propagation delay exactly like a `.MEASURE TRIG/TARG`
//!   statement,
//! * stack, pin-position and multi-stage derating consistent with the
//!   synthetic library's sizing rules, and
//! * a **parameter-sweep harness** producing the delay grids (voltage ×
//!   load) that feed the regression flow of Fig. 1.
//!
//! Delays are reported in **picoseconds**, currents in µA, capacitances in
//! fF, voltages in V.
//!
//! # Example
//!
//! ```
//! use avfs_spice::{Technology, characterize::pin_delay_ps};
//! use avfs_netlist::{CellLibrary, library::Polarity};
//!
//! let tech = Technology::nm15();
//! let lib = CellLibrary::nangate15_like();
//! let inv = lib.cell(lib.find("INV_X1").expect("INV_X1 exists"));
//! let d_nom = pin_delay_ps(&tech, inv, 0, Polarity::Fall, 0.8, 2.0).expect("valid op");
//! let d_low = pin_delay_ps(&tech, inv, 0, Polarity::Fall, 0.55, 2.0).expect("valid op");
//! assert!(d_low > d_nom, "lower supply voltage must slow the cell");
//! ```

#![forbid(unsafe_code)]

pub mod characterize;
pub mod mosfet;
pub mod sweep;
pub mod technology;
pub mod transient;

pub use characterize::pin_delay_ps;
pub use mosfet::Mosfet;
pub use sweep::{sweep_pin, sweep_pin_metered, DelaySurface, SweepConfig};
pub use technology::Technology;

use std::error::Error;
use std::fmt;

/// Errors produced by the characterization substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpiceError {
    /// The requested operating point is outside the validity range of the
    /// device model (e.g. supply at or below threshold).
    InvalidOperatingPoint {
        /// Supply voltage that was requested.
        vdd: f64,
        /// Explanation.
        reason: &'static str,
    },
    /// The transient integration did not reach the measurement crossing
    /// within the step budget.
    NoConvergence {
        /// Time reached when the budget ran out, in ps.
        reached_ps: f64,
    },
    /// A sweep was configured with an empty axis or non-finite values.
    InvalidSweep {
        /// Explanation.
        reason: &'static str,
    },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::InvalidOperatingPoint { vdd, reason } => {
                write!(f, "invalid operating point vdd={vdd} V: {reason}")
            }
            SpiceError::NoConvergence { reached_ps } => {
                write!(
                    f,
                    "transient did not converge within budget (t={reached_ps} ps)"
                )
            }
            SpiceError::InvalidSweep { reason } => write!(f, "invalid sweep: {reason}"),
        }
    }
}

impl Error for SpiceError {}
