//! Per-instance nominal timing annotations.
//!
//! In the paper's flow these come from *standard delay format* files (the
//! nominal pin-to-pin delays) plus *standard parasitics* data (the load
//! capacitances). This module stores them densely indexed by node, as the
//! simulator's "gate description with the nominal delays" that each thread
//! loads into registers (Sec. IV.A, step 1).

use avfs_netlist::{Netlist, NodeId, NodeKind};
use avfs_waveform::PinDelays;

/// Nominal pin-to-pin delays and instance loads for every node of one
/// netlist. Times are picoseconds, loads fF.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingAnnotation {
    /// `delays[node][pin]` — one rise/fall pair per input pin. Inputs have
    /// no pins; outputs have exactly one (their observation edge, zero by
    /// default).
    delays: Vec<Vec<PinDelays>>,
    /// Output-net load per node, fF.
    loads_ff: Vec<f64>,
}

impl TimingAnnotation {
    /// Creates a zero-delay annotation shaped like `netlist`, with loads
    /// from [`Netlist::load_caps_ff`].
    pub fn zero(netlist: &Netlist) -> TimingAnnotation {
        let delays = netlist
            .nodes()
            .iter()
            .map(|node| vec![PinDelays::default(); node.fanin().len()])
            .collect();
        TimingAnnotation {
            delays,
            loads_ff: netlist.load_caps_ff(),
        }
    }

    /// Creates an annotation from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree with each other.
    pub fn from_parts(delays: Vec<Vec<PinDelays>>, loads_ff: Vec<f64>) -> TimingAnnotation {
        assert_eq!(delays.len(), loads_ff.len(), "annotation shape mismatch");
        TimingAnnotation { delays, loads_ff }
    }

    /// A deterministic 64-bit hash of the annotation's content: every
    /// pin's rise/fall delay and every node's load, by IEEE-754 bit
    /// pattern, with shape framing. Used as a corner discriminator in
    /// compiled-artifact cache keys — two annotations for the same
    /// netlist at different corners hash differently.
    pub fn content_hash(&self) -> u64 {
        let mut h = avfs_netlist::hash::Fnv1a::new();
        h.write_usize(self.delays.len());
        for pins in &self.delays {
            h.write_usize(pins.len());
            for d in pins {
                h.write_f64(d.rise);
                h.write_f64(d.fall);
            }
        }
        for &load in &self.loads_ff {
            h.write_f64(load);
        }
        h.finish()
    }

    /// Number of annotated nodes.
    pub fn len(&self) -> usize {
        self.delays.len()
    }

    /// `true` if the annotation covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.delays.is_empty()
    }

    /// The nominal rise/fall delays from input `pin` of `node` to its
    /// output, ps.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `pin` is out of range.
    #[inline]
    pub fn pin_delays(&self, node: NodeId, pin: usize) -> PinDelays {
        self.delays[node.index()][pin]
    }

    /// All pin delays of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn node_delays(&self, node: NodeId) -> &[PinDelays] {
        &self.delays[node.index()]
    }

    /// Mutable access for annotators (SDF parser, characterization).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node_delays_mut(&mut self, node: NodeId) -> &mut [PinDelays] {
        &mut self.delays[node.index()]
    }

    /// The load on the node's output net, fF.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn load_ff(&self, node: NodeId) -> f64 {
        self.loads_ff[node.index()]
    }

    /// Overrides the load of one net (SPEF annotation path).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_load_ff(&mut self, node: NodeId, load_ff: f64) {
        self.loads_ff[node.index()] = load_ff;
    }

    /// The largest pin-to-pin delay in the annotation (used for sanity
    /// checks and STA bounds).
    pub fn max_delay_ps(&self) -> f64 {
        self.delays
            .iter()
            .flatten()
            .fold(0.0, |m, d| m.max(d.max()))
    }

    /// Verifies the annotation covers `netlist` exactly: one entry per
    /// node, one pin pair per fan-in.
    pub fn matches(&self, netlist: &Netlist) -> bool {
        self.delays.len() == netlist.num_nodes()
            && netlist
                .iter()
                .all(|(id, node)| self.delays[id.index()].len() == node.fanin().len())
    }

    /// Sum of all gate pin delays (diagnostic).
    pub fn total_pins(&self) -> usize {
        self.delays.iter().map(Vec::len).sum()
    }
}

/// Convenience: checks whether a netlist node is a gate (delays apply) or
/// an interface node.
pub fn is_gate(netlist: &Netlist, node: NodeId) -> bool {
    matches!(netlist.node(node).kind(), NodeKind::Gate(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_netlist::{CellLibrary, NetlistBuilder};

    fn small() -> Netlist {
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("t", &lib);
        let a = b.add_input("a").unwrap();
        let c = b.add_input("b").unwrap();
        let g = b.add_gate("g", "NAND2_X1", &[a, c]).unwrap();
        b.add_output("y", g).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn zero_annotation_shape() {
        let n = small();
        let ann = TimingAnnotation::zero(&n);
        assert!(ann.matches(&n));
        assert_eq!(ann.len(), 4);
        assert!(!ann.is_empty());
        let g = n.find("g").unwrap();
        assert_eq!(ann.node_delays(g).len(), 2);
        assert_eq!(ann.pin_delays(g, 0), PinDelays::default());
        assert_eq!(ann.total_pins(), 2 + 1);
        assert_eq!(ann.max_delay_ps(), 0.0);
        // Loads come from the netlist.
        assert!(ann.load_ff(g) > 0.0);
    }

    #[test]
    fn mutation_roundtrip() {
        let n = small();
        let mut ann = TimingAnnotation::zero(&n);
        let g = n.find("g").unwrap();
        ann.node_delays_mut(g)[1] = PinDelays {
            rise: 12.0,
            fall: 9.0,
        };
        assert_eq!(ann.pin_delays(g, 1).rise, 12.0);
        assert_eq!(ann.max_delay_ps(), 12.0);
        ann.set_load_ff(g, 42.0);
        assert_eq!(ann.load_ff(g), 42.0);
    }

    #[test]
    fn matches_rejects_wrong_shape() {
        let n = small();
        let ann = TimingAnnotation::from_parts(vec![Vec::new(); 4], vec![0.0; 4]);
        assert!(!ann.matches(&n)); // gate pin lists are empty

        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("other", &lib);
        let a = b.add_input("a").unwrap();
        let g = b.add_gate("g", "INV_X1", &[a]).unwrap();
        b.add_output("y", g).unwrap();
        let other = b.finish().unwrap();
        let ann = TimingAnnotation::zero(&other);
        assert!(!ann.matches(&n));
    }

    #[test]
    fn is_gate_classifier() {
        let n = small();
        assert!(is_gate(&n, n.find("g").unwrap()));
        assert!(!is_gate(&n, n.find("a").unwrap()));
        assert!(!is_gate(&n, n.find("y").unwrap()));
    }
}
