//! Text serialization of kernel packages.
//!
//! A deliberately simple line-oriented format (no external serialization
//! dependencies) with full `f64` round-trip fidelity — the paper's
//! Sec. III.D warns that "the polynomial approximation is highly prone to
//! deviations in the coefficients", so values are written in hexadecimal
//! bit-exact form with a human-readable decimal alongside.
//!
//! ```text
//! avfs-kernels v1
//! space 0.55 1.1 0.5 128 0.8
//! order 3
//! cell NAND2_X1 pins 2
//! pin 0
//! rise <16 hex words>
//! fall <16 hex words>
//! loads <9 hex words>
//! nominal-rise <9 hex words>
//! nominal-fall <9 hex words>
//! …
//! end
//! ```

use crate::characterize::{CellKernelData, KernelPackage, PinKernelData};
use crate::DelayError;
use std::fmt::Write as _;

/// Serializes a package to text.
pub fn write_kernels(package: &KernelPackage) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "avfs-kernels v1");
    let (v_min, v_max, c_min, c_max, v_nom) = package.space;
    let _ = writeln!(out, "space {v_min} {v_max} {c_min} {c_max} {v_nom}");
    let _ = writeln!(out, "order {}", package.order);
    for cell in &package.cells {
        let _ = writeln!(out, "cell {} pins {}", cell.cell, cell.pins.len());
        for (p, pin) in cell.pins.iter().enumerate() {
            let _ = writeln!(out, "pin {p}");
            let _ = writeln!(out, "rise {}", hex_floats(&pin.rise_coeffs));
            let _ = writeln!(out, "fall {}", hex_floats(&pin.fall_coeffs));
            let _ = writeln!(out, "loads {}", hex_floats(&pin.loads_ff));
            let _ = writeln!(out, "nominal-rise {}", hex_floats(&pin.nominal_rise_ps));
            let _ = writeln!(out, "nominal-fall {}", hex_floats(&pin.nominal_fall_ps));
        }
    }
    let _ = writeln!(out, "end");
    out
}

/// Parses a package from text.
///
/// # Errors
///
/// Returns [`DelayError::Characterization`] (with a line reference in the
/// message) for any structural or numeric problem.
pub fn read_kernels(text: &str) -> Result<KernelPackage, DelayError> {
    let err = |line: usize, message: String| DelayError::Characterization {
        cell: String::new(),
        message: format!("line {line}: {message}"),
    };
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim()));

    let (ln, header) = lines
        .next()
        .ok_or_else(|| err(0, "empty kernel file".to_owned()))?;
    if header != "avfs-kernels v1" {
        return Err(err(ln, format!("bad header `{header}`")));
    }

    let mut space = None;
    let mut order = None;
    let mut cells: Vec<CellKernelData> = Vec::new();
    let mut saw_end = false;

    while let Some((ln, line)) = lines.next() {
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        match words.next() {
            Some("space") => {
                let vals: Vec<f64> = words
                    .map(|w| w.parse::<f64>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| err(ln, format!("bad space value: {e}")))?;
                if vals.len() != 5 {
                    return Err(err(ln, "space needs five values".to_owned()));
                }
                space = Some((vals[0], vals[1], vals[2], vals[3], vals[4]));
            }
            Some("order") => {
                order = Some(
                    words
                        .next()
                        .ok_or_else(|| err(ln, "order needs a value".to_owned()))?
                        .parse::<usize>()
                        .map_err(|e| err(ln, format!("bad order: {e}")))?,
                );
            }
            Some("cell") => {
                let name = words
                    .next()
                    .ok_or_else(|| err(ln, "cell needs a name".to_owned()))?
                    .to_owned();
                if words.next() != Some("pins") {
                    return Err(err(ln, "expected `pins <count>`".to_owned()));
                }
                let pin_count: usize = words
                    .next()
                    .ok_or_else(|| err(ln, "missing pin count".to_owned()))?
                    .parse()
                    .map_err(|e| err(ln, format!("bad pin count: {e}")))?;
                let mut pins = Vec::with_capacity(pin_count);
                for expect_pin in 0..pin_count {
                    let mut take = |keyword: &str| -> Result<Vec<f64>, DelayError> {
                        let (lno, l) = lines
                            .next()
                            .ok_or_else(|| err(ln, format!("truncated after `{name}`")))?;
                        let rest = l.strip_prefix(keyword).ok_or_else(|| {
                            err(lno, format!("expected `{keyword} …`, found `{l}`"))
                        })?;
                        parse_hex_floats(rest).map_err(|m| err(lno, m))
                    };
                    let pin_header = take("pin")?;
                    if pin_header.len() != 1 || pin_header[0] as usize != expect_pin {
                        return Err(err(ln, format!("expected `pin {expect_pin}`")));
                    }
                    pins.push(PinKernelData {
                        rise_coeffs: take("rise")?,
                        fall_coeffs: take("fall")?,
                        loads_ff: take("loads")?,
                        nominal_rise_ps: take("nominal-rise")?,
                        nominal_fall_ps: take("nominal-fall")?,
                    });
                }
                cells.push(CellKernelData { cell: name, pins });
            }
            Some("end") => {
                saw_end = true;
                break;
            }
            Some(other) => return Err(err(ln, format!("unknown directive `{other}`"))),
            None => continue,
        }
    }
    if !saw_end {
        return Err(err(0, "missing `end` terminator".to_owned()));
    }
    Ok(KernelPackage {
        space: space.ok_or_else(|| err(0, "missing `space`".to_owned()))?,
        order: order.ok_or_else(|| err(0, "missing `order`".to_owned()))?,
        cells,
    })
}

/// Bit-exact float list: `<hex-bits>` words (decimal only in comments).
fn hex_floats(values: &[f64]) -> String {
    let mut out = String::with_capacity(values.len() * 17);
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        let _ = write!(out, "{:016x}", v.to_bits());
    }
    out
}

fn parse_hex_floats(text: &str) -> Result<Vec<f64>, String> {
    text.split_whitespace()
        .map(|w| {
            // Accept both bit-exact hex and plain decimals (hand edits).
            if w.len() == 16 && w.bytes().all(|b| b.is_ascii_hexdigit()) {
                u64::from_str_radix(w, 16)
                    .map(f64::from_bits)
                    .map_err(|e| format!("bad hex float `{w}`: {e}"))
            } else {
                w.parse::<f64>()
                    .map_err(|e| format!("bad float `{w}`: {e}"))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize_library, CharacterizationConfig, CharacterizedLibrary};
    use crate::model::DelayModel;
    use crate::op::OperatingPoint;
    use avfs_netlist::library::Polarity;
    use avfs_netlist::CellLibrary;
    use avfs_spice::Technology;

    #[test]
    fn roundtrip_preserves_kernels_bit_exactly() {
        let lib = CellLibrary::nangate15_like();
        let ids = vec![lib.find("NAND2_X1").unwrap(), lib.find("INV_X2").unwrap()];
        let chars = characterize_library(
            &lib,
            &Technology::nm15(),
            &CharacterizationConfig::fast(),
            Some(&ids),
        )
        .unwrap();
        let package = chars.to_package(&lib);
        assert_eq!(package.cells.len(), 2);

        let text = write_kernels(&package);
        let parsed = read_kernels(&text).unwrap();
        assert_eq!(parsed, package);

        // The restored library evaluates identically.
        let restored = CharacterizedLibrary::from_package(&parsed, &lib).unwrap();
        for &(v, c) in &[(0.55, 0.5), (0.8, 4.0), (1.1, 128.0)] {
            let p = chars.space().normalize(OperatingPoint::new(v, c)).unwrap();
            for &id in &ids {
                for pol in Polarity::both() {
                    let a = chars.model().factor(id, 0, pol, p).unwrap();
                    let b = restored.model().factor(id, 0, pol, p).unwrap();
                    assert_eq!(a.to_bits(), b.to_bits(), "factor drift at ({v},{c})");
                }
            }
        }
        // Nominal curves restored too.
        let a = chars.nominal_curve(ids[0], 1, Polarity::Fall).unwrap();
        let b = restored.nominal_curve(ids[0], 1, Polarity::Fall).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_malformed_files() {
        for bad in [
            "",
            "wrong header\nend\n",
            "avfs-kernels v1\norder 3\nend\n", // missing space
            "avfs-kernels v1\nspace 0.55 1.1 0.5 128 0.8\nend\n", // missing order
            "avfs-kernels v1\nspace 1 2 3\norder 3\nend\n",
            "avfs-kernels v1\nspace 0.55 1.1 0.5 128 0.8\norder 3\ncell X pins 1\npin 0\nrise 1.0\n", // truncated
            "avfs-kernels v1\nspace 0.55 1.1 0.5 128 0.8\norder 3\nfrobnicate\nend\n",
            "avfs-kernels v1\nspace 0.55 1.1 0.5 128 0.8\norder 3\n", // no end
        ] {
            assert!(read_kernels(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn accepts_decimal_floats() {
        let text = "\
avfs-kernels v1
space 0.55 1.1 0.5 128 0.8
order 1
cell INV_X1 pins 1
pin 0
rise 0.1 0.2 0.3 0.4
fall 0.1 0.2 0.3 0.4
loads 0.5 2.0 128.0
nominal-rise 5.0 8.0 20.0
nominal-fall 6.0 9.0 22.0
end
";
        let package = read_kernels(text).unwrap();
        assert_eq!(package.order, 1);
        assert_eq!(
            package.cells[0].pins[0].rise_coeffs,
            vec![0.1, 0.2, 0.3, 0.4]
        );
        let lib = CellLibrary::nangate15_like();
        let restored = CharacterizedLibrary::from_package(&package, &lib).unwrap();
        assert_eq!(restored.order(), 1);
    }

    #[test]
    fn from_package_rejects_unknown_cell_and_bad_shapes() {
        let lib = CellLibrary::nangate15_like();
        let mut package = KernelPackage {
            space: (0.55, 1.1, 0.5, 128.0, 0.8),
            order: 1,
            cells: vec![CellKernelData {
                cell: "WIDGET_X1".to_owned(),
                pins: vec![],
            }],
        };
        assert!(CharacterizedLibrary::from_package(&package, &lib).is_err());

        package.cells[0].cell = "INV_X1".to_owned(); // zero pins vs one
        assert!(CharacterizedLibrary::from_package(&package, &lib).is_err());

        package.cells[0].pins = vec![PinKernelData {
            rise_coeffs: vec![0.0; 4],
            fall_coeffs: vec![0.0; 4],
            loads_ff: vec![1.0], // too short
            nominal_rise_ps: vec![1.0],
            nominal_fall_ps: vec![1.0],
        }];
        assert!(CharacterizedLibrary::from_package(&package, &lib).is_err());
    }
}
