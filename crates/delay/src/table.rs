//! Coefficient storage indexed by (cell type, input pin, polarity).
//!
//! Mirrors the paper's GPU-side layout (Sec. IV): "the coefficients of the
//! delay polynomials are stored in a constant double-precision
//! floating-point array structure in the global memory, which is indexed by
//! the cell type, input pin and transition polarity". Here the flat `f64`
//! arena plus an offset table plays the role of that constant array; all
//! kernels share it read-only.

use crate::polynomial::SurfacePolynomial;
use crate::DelayError;
use avfs_netlist::library::{CellId, Polarity};

/// Flat coefficient table for a whole cell library.
#[derive(Debug, Clone, PartialEq)]
pub struct CoefficientTable {
    order: usize,
    /// Stride per surface: `(order+1)²`.
    stride: usize,
    /// `offsets[cell] = Some(base)` → pin `p`, polarity `q` lives at
    /// `base + (2p + q) · stride`.
    offsets: Vec<Option<usize>>,
    /// Number of input pins per cell entry.
    pins: Vec<u8>,
    arena: Vec<f64>,
}

impl CoefficientTable {
    /// Creates an empty table for `num_cells` cell types at order `N`.
    pub fn new(num_cells: usize, order: usize) -> CoefficientTable {
        CoefficientTable {
            order,
            stride: (order + 1) * (order + 1),
            offsets: vec![None; num_cells],
            pins: vec![0; num_cells],
            arena: Vec::new(),
        }
    }

    /// Per-variable polynomial order `N`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Number of cell-type slots the table was created for (characterized
    /// or not) — the iteration bound for table-wide audits.
    pub fn num_cells(&self) -> usize {
        self.offsets.len()
    }

    /// Number of input pins characterized for `cell` (0 when the cell has
    /// no kernels installed).
    pub fn num_pins(&self, cell: CellId) -> usize {
        match self.offsets.get(cell.index()) {
            Some(Some(_)) => self.pins[cell.index()] as usize,
            _ => 0,
        }
    }

    /// Number of cell types with kernels installed.
    pub fn num_characterized(&self) -> usize {
        self.offsets.iter().filter(|o| o.is_some()).count()
    }

    /// Total `f64` storage — the "negligible memory" the paper quantifies
    /// against waveform storage.
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// A deterministic 64-bit hash of the table's fitted content: order,
    /// per-cell offsets and pin counts, and every coefficient by
    /// IEEE-754 bit pattern. Any refit — a different order, a retuned
    /// coefficient, an added cell — changes the hash. Used by
    /// [`CharacterizedLibrary::content_hash`](crate::CharacterizedLibrary::content_hash)
    /// as the fitted half of compiled-artifact cache keys.
    pub fn content_hash(&self) -> u64 {
        let mut h = avfs_netlist::hash::Fnv1a::new();
        h.write_usize(self.order);
        h.write_usize(self.offsets.len());
        for offset in &self.offsets {
            match offset {
                None => h.write_usize(0),
                Some(base) => {
                    h.write_usize(1);
                    h.write_usize(*base);
                }
            }
        }
        h.write(&self.pins);
        h.write_usize(self.arena.len());
        for &c in &self.arena {
            h.write_f64(c);
        }
        h.finish()
    }

    /// Installs the per-pin/polarity surfaces of one cell.
    ///
    /// `surfaces[p][q]` is the polynomial for input pin `p` and polarity
    /// index `q` ([`Polarity::index`]).
    ///
    /// # Errors
    ///
    /// Returns [`DelayError::BadCoefficients`] if any surface's order
    /// disagrees with the table order, and [`DelayError::MissingCell`] if
    /// `cell` is out of range.
    pub fn insert(
        &mut self,
        cell: CellId,
        surfaces: &[[SurfacePolynomial; 2]],
    ) -> Result<(), DelayError> {
        let idx = cell.index();
        if idx >= self.offsets.len() {
            return Err(DelayError::MissingCell { cell_index: idx });
        }
        for pair in surfaces {
            for s in pair {
                if s.order() != self.order {
                    return Err(DelayError::BadCoefficients {
                        expected: self.stride,
                        got: (s.order() + 1) * (s.order() + 1),
                    });
                }
            }
        }
        let base = self.arena.len();
        for pair in surfaces {
            for s in pair {
                self.arena.extend_from_slice(s.coefficients());
            }
        }
        self.offsets[idx] = Some(base);
        self.pins[idx] = surfaces.len() as u8;
        Ok(())
    }

    /// Fetches the coefficient slice for (cell, pin, polarity) — the
    /// paper's step 4, "fetch corresponding delay coefficients β".
    ///
    /// # Errors
    ///
    /// Returns [`DelayError::MissingCell`] if the cell has no kernels or
    /// the pin is out of range.
    #[inline]
    pub fn coefficients(
        &self,
        cell: CellId,
        pin: usize,
        polarity: Polarity,
    ) -> Result<&[f64], DelayError> {
        let idx = cell.index();
        let base = self
            .offsets
            .get(idx)
            .copied()
            .flatten()
            .ok_or(DelayError::MissingCell { cell_index: idx })?;
        if pin >= self.pins[idx] as usize {
            return Err(DelayError::MissingCell { cell_index: idx });
        }
        let start = base + (2 * pin + polarity.index()) * self.stride;
        Ok(&self.arena[start..start + self.stride])
    }

    /// Evaluates the deviation polynomial for (cell, pin, polarity) at a
    /// normalized point. Hot path: one offset computation plus nested
    /// Horner on the shared arena.
    ///
    /// # Errors
    ///
    /// Same as [`CoefficientTable::coefficients`].
    #[inline]
    pub fn deviation(
        &self,
        cell: CellId,
        pin: usize,
        polarity: Polarity,
        p: crate::op::NormalizedPoint,
    ) -> Result<f64, DelayError> {
        let beta = self.coefficients(cell, pin, polarity)?;
        Ok(avfs_regression::poly::eval_horner(
            self.order, beta, p.v, p.c,
        ))
    }

    /// Lane-batched [`CoefficientTable::deviation`]: evaluates the same
    /// surface at every point in one call, `out[k] = f(points[k])`.
    ///
    /// One offset computation is amortized over the whole lane group and the
    /// Horner reduction runs through the unrolled FMA kernel
    /// ([`avfs_regression::poly::eval_horner_lanes`]); each lane is bitwise
    /// identical to the scalar path.
    ///
    /// # Errors
    ///
    /// Same as [`CoefficientTable::coefficients`].
    ///
    /// # Panics
    ///
    /// Panics if `points.len() != out.len()`.
    #[inline]
    pub fn deviation_lanes(
        &self,
        cell: CellId,
        pin: usize,
        polarity: Polarity,
        points: &[crate::op::NormalizedPoint],
        out: &mut [f64],
    ) -> Result<(), DelayError> {
        let beta = self.coefficients(cell, pin, polarity)?;
        crate::polynomial::eval_lanes_with(self.order, beta, points, out);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::NormalizedPoint;

    fn constant_surface(order: usize, value: f64) -> SurfacePolynomial {
        let mut coeffs = vec![0.0; (order + 1) * (order + 1)];
        coeffs[0] = value;
        SurfacePolynomial::new(order, coeffs).unwrap()
    }

    #[test]
    fn insert_and_fetch() {
        let mut t = CoefficientTable::new(4, 2);
        let surfaces = vec![
            [constant_surface(2, 0.1), constant_surface(2, 0.2)],
            [constant_surface(2, 0.3), constant_surface(2, 0.4)],
        ];
        t.insert(CellId::from_index(1), &surfaces).unwrap();
        assert_eq!(t.num_characterized(), 1);
        assert_eq!(t.arena_len(), 4 * 9);
        let p = NormalizedPoint { v: 0.5, c: 0.5 };
        let cell = CellId::from_index(1);
        assert!((t.deviation(cell, 0, Polarity::Rise, p).unwrap() - 0.1).abs() < 1e-12);
        assert!((t.deviation(cell, 0, Polarity::Fall, p).unwrap() - 0.2).abs() < 1e-12);
        assert!((t.deviation(cell, 1, Polarity::Rise, p).unwrap() - 0.3).abs() < 1e-12);
        assert!((t.deviation(cell, 1, Polarity::Fall, p).unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn deviation_lanes_matches_scalar_bitwise() {
        let mut t = CoefficientTable::new(2, 2);
        let coeffs: Vec<f64> = (0..9).map(|k| 0.011 * k as f64 - 0.03).collect();
        let s = SurfacePolynomial::new(2, coeffs).unwrap();
        t.insert(CellId::from_index(0), &[[s.clone(), s]]).unwrap();
        let cell = CellId::from_index(0);
        for len in [0usize, 1, 3, 4, 5, 8, 11] {
            let points: Vec<NormalizedPoint> = (0..len)
                .map(|k| NormalizedPoint {
                    v: 0.02 + 0.08 * k as f64,
                    c: 0.9 - 0.07 * k as f64,
                })
                .collect();
            let mut out = vec![0.0; len];
            t.deviation_lanes(cell, 0, Polarity::Rise, &points, &mut out)
                .unwrap();
            for (k, &p) in points.iter().enumerate() {
                let scalar = t.deviation(cell, 0, Polarity::Rise, p).unwrap();
                assert_eq!(out[k].to_bits(), scalar.to_bits());
            }
        }
        // Errors propagate before any lane is touched.
        let mut out = [0.0; 2];
        assert!(t
            .deviation_lanes(
                CellId::from_index(1),
                0,
                Polarity::Rise,
                &[NormalizedPoint { v: 0.5, c: 0.5 }; 2],
                &mut out
            )
            .is_err());
    }

    #[test]
    fn missing_cell_and_pin_errors() {
        let mut t = CoefficientTable::new(2, 1);
        let cell0 = CellId::from_index(0);
        let p = NormalizedPoint { v: 0.0, c: 0.0 };
        assert!(matches!(
            t.deviation(cell0, 0, Polarity::Rise, p),
            Err(DelayError::MissingCell { cell_index: 0 })
        ));
        t.insert(
            cell0,
            &[[constant_surface(1, 0.0), constant_surface(1, 0.0)]],
        )
        .unwrap();
        assert!(t.deviation(cell0, 0, Polarity::Rise, p).is_ok());
        // Pin 1 was never installed.
        assert!(t.deviation(cell0, 1, Polarity::Rise, p).is_err());
        // Cell index out of table range.
        assert!(t.insert(CellId::from_index(9), &[]).is_err());
    }

    #[test]
    fn order_mismatch_rejected() {
        let mut t = CoefficientTable::new(2, 3);
        assert!(matches!(
            t.insert(
                CellId::from_index(0),
                &[[constant_surface(2, 0.0), constant_surface(2, 0.0)]]
            ),
            Err(DelayError::BadCoefficients { .. })
        ));
    }

    #[test]
    fn memory_footprint_matches_paper_counts() {
        // One pin stores (N+1)² coefficients per polarity: 4, 9, 16, 25 …
        for (n, per_pin) in [(1usize, 4usize), (2, 9), (3, 16), (4, 25)] {
            let mut t = CoefficientTable::new(1, n);
            t.insert(
                CellId::from_index(0),
                &[[constant_surface(n, 0.0), constant_surface(n, 0.0)]],
            )
            .unwrap();
            assert_eq!(t.arena_len(), 2 * per_pin);
        }
    }
}
