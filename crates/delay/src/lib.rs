//! Parametric voltage-dependent delay modeling (paper Sec. III).
//!
//! This crate is the bridge between offline characterization and online
//! simulation:
//!
//! * [`op`] — operating points `P = (v, c)` and the constrained parameter
//!   space `𝒫` with its normalizations,
//! * [`polynomial`] — compiled delay-deviation surfaces `f : 𝒫 → ℝ`
//!   evaluated with nested Horner / FMA (the paper's GPU delay kernel),
//! * [`table`] — coefficient storage indexed by (cell type, input pin,
//!   transition polarity), "a constant double-precision floating-point
//!   array structure … indexed by the cell type, input pin and transition
//!   polarity" (Sec. IV),
//! * [`model`] — the [`DelayModel`] abstraction with the
//!   polynomial model plus the baselines the paper discusses: static
//!   delays, look-up-table interpolation, and the analytical α-power law,
//! * [`annotation`] — per-instance nominal pin-to-pin delays (the SDF view
//!   of the circuit) and instance load capacitances,
//! * [`characterize`] — the full Fig. 1 pre-process: SPICE-substitute
//!   sweep → grid densification → normalization → OLS regression →
//!   compiled kernels.
//!
//! # Normalization note
//!
//! Eq. 3 of the paper normalizes delays by "the" nominal delay. For the
//! annotated-SDF flow to be consistent (and for the ±0.1 % nominal-case
//! deviation of Table II to be achievable), the deviation must vanish at
//! `v = V_nom` for *every* load. We therefore normalize each sweep sample
//! by the delay at the nominal voltage *under the same load*:
//! `y(v, c) = d(v, c) / d(V_nom, c) − 1`, and Eq. 9 scales the
//! load-dependent SDF annotation: `d' = d_SDF(c) · (1 + f(v, c))`.
//! `DESIGN.md` discusses this interpretation.

#![forbid(unsafe_code)]

pub mod annotation;
pub mod characterize;
pub mod io;
pub mod model;
pub mod op;
pub mod polynomial;
pub mod table;
pub mod variation;

pub use annotation::TimingAnnotation;
pub use characterize::{
    characterize_library, characterize_library_metered, CharacterizationReport,
    CharacterizedLibrary,
};
pub use model::{AlphaPowerModel, DelayModel, LutModel, PolynomialModel, StaticModel};
pub use op::{NormalizedPoint, OperatingPoint, ParameterSpace};
pub use polynomial::SurfacePolynomial;
pub use table::CoefficientTable;
pub use variation::VariationConfig;

use std::error::Error;
use std::fmt;

/// Errors produced by delay modeling.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DelayError {
    /// An operating point lies outside the characterized parameter space.
    OutOfRange {
        /// The voltage requested, V.
        voltage: f64,
        /// The load requested, fF.
        load_ff: f64,
    },
    /// A coefficient vector had the wrong length for its declared order.
    BadCoefficients {
        /// Expected number of coefficients.
        expected: usize,
        /// Provided number.
        got: usize,
    },
    /// The coefficient table has no entry for the requested cell.
    MissingCell {
        /// Index of the cell type.
        cell_index: usize,
    },
    /// Characterization failed for a cell.
    Characterization {
        /// The cell-type name.
        cell: String,
        /// Description of the failure.
        message: String,
    },
}

impl fmt::Display for DelayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DelayError::OutOfRange { voltage, load_ff } => {
                write!(
                    f,
                    "operating point ({voltage} V, {load_ff} fF) outside parameter space"
                )
            }
            DelayError::BadCoefficients { expected, got } => {
                write!(f, "expected {expected} coefficients, got {got}")
            }
            DelayError::MissingCell { cell_index } => {
                write!(f, "no delay kernel for cell index {cell_index}")
            }
            DelayError::Characterization { cell, message } => {
                write!(f, "characterization of `{cell}` failed: {message}")
            }
        }
    }
}

impl Error for DelayError {}
