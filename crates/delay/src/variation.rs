//! Random process-variation injection.
//!
//! The paper positions its approximation error "as uncertainty due to
//! random process variations" (Sec. V.C) and motivates the whole flow
//! with the increasing process/voltage/temperature sensitivity of
//! nano-scaled CMOS. This module makes that uncertainty explicit: a
//! deterministic per-instance log-normal-ish derating of the nominal
//! pin delays, the standard first-order model for uncorrelated random
//! process variation in gate-delay simulation (cf. variation-aware fault
//! grading, the paper's \[13\]).

use crate::annotation::TimingAnnotation;
use avfs_waveform::PinDelays;

/// Configuration of the random variation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationConfig {
    /// Relative standard deviation of the per-pin delay derating
    /// (e.g. 0.05 = 5 % sigma).
    pub sigma: f64,
    /// Clamp on the absolute relative deviation (guards the tails so
    /// delays stay positive; 3–4 sigma is customary).
    pub max_deviation: f64,
    /// RNG seed; the same seed reproduces the same "die".
    pub seed: u64,
}

impl VariationConfig {
    /// A mild 5 %-sigma configuration.
    pub fn sigma5(seed: u64) -> VariationConfig {
        VariationConfig {
            sigma: 0.05,
            max_deviation: 0.2,
            seed,
        }
    }
}

/// Derives a process-varied copy of an annotation: every pin delay is
/// scaled by an independent factor `1 + ε` with `ε ~ N(0, sigma²)`
/// truncated at `±max_deviation`. Loads are unchanged (they model layout,
/// not process).
///
/// # Example
///
/// ```
/// use avfs_delay::{variation::{apply_variation, VariationConfig}, TimingAnnotation};
/// use avfs_netlist::{CellLibrary, NetlistBuilder};
/// use avfs_waveform::PinDelays;
///
/// # fn main() -> Result<(), avfs_netlist::NetlistError> {
/// let lib = CellLibrary::nangate15_like();
/// let mut b = NetlistBuilder::new("t", &lib);
/// let a = b.add_input("a")?;
/// let g = b.add_gate("g", "INV_X1", &[a])?;
/// b.add_output("y", g)?;
/// let netlist = b.finish()?;
/// let mut ann = TimingAnnotation::zero(&netlist);
/// ann.node_delays_mut(netlist.find("g").expect("exists"))[0] =
///     PinDelays { rise: 10.0, fall: 10.0 };
/// let varied = apply_variation(&ann, &VariationConfig::sigma5(1));
/// let d = varied.pin_delays(netlist.find("g").expect("exists"), 0);
/// assert!(d.rise > 8.0 && d.rise < 12.0);
/// # Ok(())
/// # }
/// ```
pub fn apply_variation(
    annotation: &TimingAnnotation,
    config: &VariationConfig,
) -> TimingAnnotation {
    let mut rng = SplitMix64::new(config.seed);
    let mut varied = annotation.clone();
    for node in 0..annotation.len() {
        let id = avfs_netlist::NodeId::from_index(node);
        let pins = varied.node_delays_mut(id);
        for d in pins.iter_mut() {
            let dev_r =
                gaussian(&mut rng, config.sigma).clamp(-config.max_deviation, config.max_deviation);
            let dev_f =
                gaussian(&mut rng, config.sigma).clamp(-config.max_deviation, config.max_deviation);
            *d = PinDelays {
                rise: (d.rise * (1.0 + dev_r)).max(0.0),
                fall: (d.fall * (1.0 + dev_f)).max(0.0),
            };
        }
    }
    varied
}

/// One deterministic Monte Carlo delay-derate factor `1 + ε` with
/// `ε ~ N(0, sigma²)` truncated at `±max_deviation`, addressed by its
/// coordinates instead of drawn from a sequential stream.
///
/// Where [`apply_variation`] materializes one varied annotation per die,
/// `derate` is the sampling form the scenario engine uses: the factor is
/// a **pure hash** of `(seed, sample, node, pin, polarity)` through the
/// SplitMix64 finalizer, so
///
/// * any slot of a sampled grid can be (re)computed independently, in
///   any order, on any shard, by any thread — the draw never depends on
///   evaluation order (the determinism idiom of `avfs-inject`'s
///   `decide`),
/// * the draw is independent of the slot's operating-point *schedule*:
///   every segment of a scheduled slot sees the same die,
/// * `sample` is the die index — two scenarios evaluated at the same
///   sample index share process variation, which is exactly what a
///   failure-probability-vs-voltage curve wants (paired samples across
///   the voltage axis).
///
/// `sigma == 0.0` returns exactly `1.0` (no floating-point work at all),
/// so a zero-sigma Monte Carlo run multiplies every delay by the exact
/// identity.
pub fn derate(
    config: &VariationConfig,
    sample: u32,
    node: avfs_netlist::NodeId,
    pin: usize,
    polarity: avfs_netlist::library::Polarity,
) -> f64 {
    if config.sigma == 0.0 {
        return 1.0;
    }
    // Chain the coordinates through the SplitMix64 finalizer; the golden
    // ratio increment keeps zero-valued fields from collapsing the state.
    let mut key = config.seed;
    for field in [
        u64::from(sample),
        node.index() as u64,
        pin as u64,
        matches!(polarity, avfs_netlist::library::Polarity::Rise) as u64,
    ] {
        key = finalize(key.wrapping_add(0x9E3779B97F4A7C15).wrapping_add(field));
    }
    let mut rng = SplitMix64::new(key);
    let dev = gaussian(&mut rng, config.sigma).clamp(-config.max_deviation, config.max_deviation);
    (1.0 + dev).max(0.0)
}

/// The SplitMix64 output finalizer, used standalone as a mixing hash by
/// [`derate`].
fn finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A tiny deterministic PRNG (SplitMix64) — keeps the crate free of
/// external dependencies while staying reproducible.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        finalize(self.state)
    }

    fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Standard normal deviate by Box–Muller, scaled by sigma.
fn gaussian(rng: &mut SplitMix64, sigma: f64) -> f64 {
    let u1 = rng.next_unit().max(f64::MIN_POSITIVE);
    let u2 = rng.next_unit();
    sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use avfs_netlist::{CellLibrary, NetlistBuilder, NodeKind};

    fn annotated() -> (avfs_netlist::Netlist, TimingAnnotation) {
        let lib = CellLibrary::nangate15_like();
        let mut b = NetlistBuilder::new("v", &lib);
        let a = b.add_input("a").unwrap();
        let mut prev = a;
        for i in 0..50 {
            prev = b.add_gate(format!("g{i}"), "INV_X1", &[prev]).unwrap();
        }
        b.add_output("y", prev).unwrap();
        let n = b.finish().unwrap();
        let mut ann = TimingAnnotation::zero(&n);
        for (id, node) in n.iter() {
            if matches!(node.kind(), NodeKind::Gate(_)) {
                ann.node_delays_mut(id)[0] = PinDelays {
                    rise: 10.0,
                    fall: 12.0,
                };
            }
        }
        (n, ann)
    }

    #[test]
    fn deterministic_per_seed() {
        let (_, ann) = annotated();
        let a = apply_variation(&ann, &VariationConfig::sigma5(7));
        let b = apply_variation(&ann, &VariationConfig::sigma5(7));
        let c = apply_variation(&ann, &VariationConfig::sigma5(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_sigma_is_identity() {
        let (_, ann) = annotated();
        let v = apply_variation(
            &ann,
            &VariationConfig {
                sigma: 0.0,
                max_deviation: 0.2,
                seed: 1,
            },
        );
        assert_eq!(v, ann);
    }

    #[test]
    fn deviations_bounded_and_centered() {
        let (n, ann) = annotated();
        let v = apply_variation(&ann, &VariationConfig::sigma5(3));
        let mut devs = Vec::new();
        for (id, node) in n.iter() {
            if matches!(node.kind(), NodeKind::Gate(_)) {
                let d = v.pin_delays(id, 0);
                devs.push(d.rise / 10.0 - 1.0);
                devs.push(d.fall / 12.0 - 1.0);
                assert!(d.rise > 0.0 && d.fall > 0.0);
                assert!((d.rise / 10.0 - 1.0).abs() <= 0.2 + 1e-12);
            }
        }
        // Sample mean near zero, sample sigma near 5 %.
        let mean: f64 = devs.iter().sum::<f64>() / devs.len() as f64;
        let var: f64 =
            devs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / devs.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.05).abs() < 0.02, "sigma {}", var.sqrt());
    }

    #[test]
    fn loads_unchanged() {
        let (n, ann) = annotated();
        let v = apply_variation(&ann, &VariationConfig::sigma5(3));
        for (id, _) in n.iter() {
            assert_eq!(ann.load_ff(id), v.load_ff(id));
        }
    }

    use avfs_netlist::library::Polarity;
    use avfs_netlist::NodeId;

    #[test]
    fn derate_is_a_pure_function_of_its_coordinates() {
        let cfg = VariationConfig::sigma5(0xD1E);
        let base = derate(&cfg, 3, NodeId::from_index(17), 1, Polarity::Rise);
        // Replays exactly, in any call order.
        let _ = derate(&cfg, 9, NodeId::from_index(2), 0, Polarity::Fall);
        assert_eq!(
            base,
            derate(&cfg, 3, NodeId::from_index(17), 1, Polarity::Rise),
            "same coordinates must replay bit-identically"
        );
        // Every coordinate participates in the hash.
        for other in [
            derate(&cfg, 4, NodeId::from_index(17), 1, Polarity::Rise),
            derate(&cfg, 3, NodeId::from_index(18), 1, Polarity::Rise),
            derate(&cfg, 3, NodeId::from_index(17), 0, Polarity::Rise),
            derate(&cfg, 3, NodeId::from_index(17), 1, Polarity::Fall),
            derate(
                &VariationConfig::sigma5(0xD1F),
                3,
                NodeId::from_index(17),
                1,
                Polarity::Rise,
            ),
        ] {
            assert_ne!(base, other);
        }
    }

    #[test]
    fn derate_zero_sigma_is_exactly_one() {
        let cfg = VariationConfig {
            sigma: 0.0,
            max_deviation: 0.2,
            seed: 42,
        };
        for sample in 0..8u32 {
            let f = derate(&cfg, sample, NodeId::from_index(5), 0, Polarity::Rise);
            assert_eq!(f.to_bits(), 1.0f64.to_bits());
        }
    }

    #[test]
    fn derate_bounded_and_distributed() {
        let cfg = VariationConfig::sigma5(0xBEEF);
        let mut devs = Vec::new();
        for sample in 0..64u32 {
            for node in 0..32 {
                for (pin, pol) in [(0, Polarity::Rise), (0, Polarity::Fall)] {
                    let f = derate(&cfg, sample, NodeId::from_index(node), pin, pol);
                    assert!(f > 0.0 && (f - 1.0).abs() <= cfg.max_deviation + 1e-12);
                    devs.push(f - 1.0);
                }
            }
        }
        let mean: f64 = devs.iter().sum::<f64>() / devs.len() as f64;
        let var: f64 =
            devs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / devs.len() as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.05).abs() < 0.01, "sigma {}", var.sqrt());
    }
}
