//! The full characterization pre-process of Fig. 1.
//!
//! For each cell type and input pin, rising and falling propagation delays
//! are extracted from transient analysis over the operating-point sweep
//! (step A), the normalized data grid is densified by linear interpolation
//! (step B), multi-variable linear regression fits a deviation surface
//! (step C), and the surface coefficients are compiled into the kernel
//! table (step D). "This flow has to be repeated only once for each new
//! cell type in the library as the computed functions are reused during
//! simulation."

use crate::annotation::TimingAnnotation;
use crate::model::{LutModel, PolynomialModel};
use crate::op::ParameterSpace;
use crate::polynomial::SurfacePolynomial;
use crate::table::CoefficientTable;
use crate::DelayError;
use avfs_netlist::library::{CellId, CellLibrary, Polarity};
use avfs_netlist::{Netlist, NodeKind};
use avfs_obs::Metrics;
use avfs_regression::{fit_least_squares_metered, DataGrid, ErrorStats, PolyBasis};
use avfs_spice::{sweep::sweep_pin_metered, SweepConfig, Technology};
use avfs_waveform::PinDelays;
use std::time::Instant;

/// Configuration of the characterization flow.
#[derive(Debug, Clone)]
pub struct CharacterizationConfig {
    /// The operating-point sweep (step A).
    pub sweep: SweepConfig,
    /// Per-variable polynomial order `N` (the paper uses N = 3 for the
    /// performance experiments).
    pub order: usize,
    /// Grid densification factor per axis (step B).
    pub refine_factor: usize,
    /// Probe lattice size per axis for the error evaluation (Fig. 4 uses
    /// 64 × 64).
    pub probe_grid: usize,
}

impl Default for CharacterizationConfig {
    fn default() -> Self {
        CharacterizationConfig {
            sweep: SweepConfig::paper(),
            order: 3,
            refine_factor: 4,
            probe_grid: 64,
        }
    }
}

impl CharacterizationConfig {
    /// A fast configuration for tests: coarse sweep, small probe lattice.
    pub fn fast() -> CharacterizationConfig {
        CharacterizationConfig {
            sweep: SweepConfig::coarse(),
            order: 2,
            refine_factor: 3,
            probe_grid: 16,
        }
    }
}

/// Nominal delay versus load at the nominal supply voltage — the data an
/// SDF writer needs for one (cell, pin, polarity).
#[derive(Debug, Clone, PartialEq)]
pub struct NominalCurve {
    /// Load axis, fF (strictly increasing).
    loads_ff: Vec<f64>,
    /// Delay at nominal voltage for each load, ps.
    delays_ps: Vec<f64>,
}

impl NominalCurve {
    /// Interpolates the nominal delay at load `c_ff` (piecewise linear in
    /// `log₂ c`, clamped at the sweep boundaries).
    pub fn delay_ps(&self, c_ff: f64) -> f64 {
        let n = self.loads_ff.len();
        let c = c_ff.max(self.loads_ff[0]).min(self.loads_ff[n - 1]);
        let x = c.log2();
        // Find the containing segment.
        let mut i = 0;
        while i + 2 < n && self.loads_ff[i + 1].log2() < x {
            i += 1;
        }
        let x0 = self.loads_ff[i].log2();
        let x1 = self.loads_ff[i + 1].log2();
        let t = if x1 > x0 { (x - x0) / (x1 - x0) } else { 0.0 };
        self.delays_ps[i] + t.clamp(0.0, 1.0) * (self.delays_ps[i + 1] - self.delays_ps[i])
    }

    /// The sampled loads.
    pub fn loads_ff(&self) -> &[f64] {
        &self.loads_ff
    }

    /// The sampled delays.
    pub fn delays_ps(&self) -> &[f64] {
        &self.delays_ps
    }
}

/// Per-cell report of the fit quality and cost (the raw data of Fig. 4 and
/// the regression-runtime claim of Sec. V.A).
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizationReport {
    /// Cell-type name.
    pub cell: String,
    /// Relative-error statistics over the probe lattice, aggregated over
    /// all pins and polarities of the cell.
    pub stats: ErrorStats,
    /// Wall-clock time of the regression solves only, milliseconds (the
    /// paper reports 1–40 ms per coefficient set).
    pub fit_millis: f64,
    /// Wall-clock time of the transient sweeps, milliseconds.
    pub sweep_millis: f64,
}

/// The outcome of characterizing a library: compiled kernels, the LUT
/// baseline, and the nominal-delay curves for annotation.
#[derive(Debug)]
pub struct CharacterizedLibrary {
    space: ParameterSpace,
    order: usize,
    model: PolynomialModel,
    lut: LutModel,
    /// `nominal[cell][pin][polarity]`.
    nominal: Vec<Option<Vec<[NominalCurve; 2]>>>,
    reports: Vec<CharacterizationReport>,
}

impl CharacterizedLibrary {
    /// The characterized parameter space.
    pub fn space(&self) -> &ParameterSpace {
        &self.space
    }

    /// Per-variable polynomial order `N`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// The compiled polynomial model (the paper's delay kernels).
    pub fn model(&self) -> &PolynomialModel {
        &self.model
    }

    /// The bilinear-LUT baseline built from the same sweep data.
    pub fn lut(&self) -> &LutModel {
        &self.lut
    }

    /// Per-cell fit reports.
    pub fn reports(&self) -> &[CharacterizationReport] {
        &self.reports
    }

    /// A deterministic 64-bit hash of everything a simulation consumes
    /// from this characterization: the parameter-space bounds, the
    /// polynomial order, the fitted coefficient table
    /// ([`CoefficientTable::content_hash`](crate::CoefficientTable::content_hash))
    /// and the nominal-delay curves. Fit reports and the LUT baseline
    /// (characterization-time diagnostics) are excluded. Used as the
    /// library half of compiled-artifact cache keys.
    pub fn content_hash(&self) -> u64 {
        let mut h = avfs_netlist::hash::Fnv1a::new();
        h.write_f64(self.space.nominal_vdd());
        let (v_lo, v_hi) = self.space.voltage_range();
        h.write_f64(v_lo);
        h.write_f64(v_hi);
        let (c_lo, c_hi) = self.space.load_range();
        h.write_f64(c_lo);
        h.write_f64(c_hi);
        h.write_usize(self.order);
        h.write_u64(self.model.table().content_hash());
        h.write_usize(self.nominal.len());
        for entry in &self.nominal {
            match entry {
                None => h.write_usize(0),
                Some(pins) => {
                    h.write_usize(1 + pins.len());
                    for pair in pins {
                        for curve in pair {
                            h.write_usize(curve.loads_ff.len());
                            for &c in &curve.loads_ff {
                                h.write_f64(c);
                            }
                            for &d in &curve.delays_ps {
                                h.write_f64(d);
                            }
                        }
                    }
                }
            }
        }
        h.finish()
    }

    /// The nominal curve for (cell, pin, polarity), if characterized.
    pub fn nominal_curve(
        &self,
        cell: CellId,
        pin: usize,
        polarity: Polarity,
    ) -> Option<&NominalCurve> {
        self.nominal
            .get(cell.index())?
            .as_ref()?
            .get(pin)
            .map(|pair| &pair[polarity.index()])
    }

    /// Annotates a netlist with nominal pin-to-pin delays interpolated
    /// from the characterization at each instance's actual load — the
    /// role the SDF file plays in the paper's flow.
    ///
    /// # Errors
    ///
    /// Returns [`DelayError::MissingCell`] if the netlist instantiates a
    /// cell type that was not characterized.
    pub fn annotate(&self, netlist: &Netlist) -> Result<TimingAnnotation, DelayError> {
        let mut ann = TimingAnnotation::zero(netlist);
        for (id, node) in netlist.iter() {
            if let NodeKind::Gate(cell) = node.kind() {
                let load = ann.load_ff(id);
                let pins = self
                    .nominal
                    .get(cell.index())
                    .and_then(Option::as_ref)
                    .ok_or(DelayError::MissingCell {
                        cell_index: cell.index(),
                    })?;
                let delays = ann.node_delays_mut(id);
                for (p, pair) in pins.iter().enumerate() {
                    delays[p] = PinDelays {
                        rise: pair[Polarity::Rise.index()].delay_ps(load),
                        fall: pair[Polarity::Fall.index()].delay_ps(load),
                    };
                }
            }
        }
        Ok(ann)
    }
}

/// A serializable snapshot of compiled kernels and nominal curves — what
/// a characterization run persists so that the Fig. 1 flow truly runs
/// "only once for each new cell type in the library".
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPackage {
    /// `(V_min, V_max, C_min, C_max, V_nom)` of the parameter space.
    pub space: (f64, f64, f64, f64, f64),
    /// Per-variable polynomial order `N`.
    pub order: usize,
    /// One entry per characterized cell type.
    pub cells: Vec<CellKernelData>,
}

/// Compiled kernels of one cell type.
#[derive(Debug, Clone, PartialEq)]
pub struct CellKernelData {
    /// Cell-type name (resolved against the library on load).
    pub cell: String,
    /// Per input pin.
    pub pins: Vec<PinKernelData>,
}

/// Compiled kernels of one input pin.
#[derive(Debug, Clone, PartialEq)]
pub struct PinKernelData {
    /// Rise-polarity polynomial coefficients (Eq. 6 order).
    pub rise_coeffs: Vec<f64>,
    /// Fall-polarity polynomial coefficients.
    pub fall_coeffs: Vec<f64>,
    /// The nominal-curve load axis, fF.
    pub loads_ff: Vec<f64>,
    /// Nominal rise delays per load, ps.
    pub nominal_rise_ps: Vec<f64>,
    /// Nominal fall delays per load, ps.
    pub nominal_fall_ps: Vec<f64>,
}

impl CharacterizedLibrary {
    /// Extracts the persistable kernel package (the LUT baseline and fit
    /// reports are characterization-time artifacts and are not included).
    pub fn to_package(&self, library: &CellLibrary) -> KernelPackage {
        let (v_min, v_max) = self.space.voltage_range();
        let (c_min, c_max) = self.space.load_range();
        let mut cells = Vec::new();
        for (idx, entry) in self.nominal.iter().enumerate() {
            let Some(pins) = entry else { continue };
            let cell = library.cell(CellId::from_index(idx));
            let pin_data = pins
                .iter()
                .enumerate()
                .map(|(p, pair)| {
                    let rise = &pair[Polarity::Rise.index()];
                    let fall = &pair[Polarity::Fall.index()];
                    PinKernelData {
                        rise_coeffs: self
                            .model
                            .table()
                            .coefficients(CellId::from_index(idx), p, Polarity::Rise)
                            .expect("characterized cell has kernels")
                            .to_vec(),
                        fall_coeffs: self
                            .model
                            .table()
                            .coefficients(CellId::from_index(idx), p, Polarity::Fall)
                            .expect("characterized cell has kernels")
                            .to_vec(),
                        loads_ff: rise.loads_ff.clone(),
                        nominal_rise_ps: rise.delays_ps.clone(),
                        nominal_fall_ps: fall.delays_ps.clone(),
                    }
                })
                .collect();
            cells.push(CellKernelData {
                cell: cell.name().to_owned(),
                pins: pin_data,
            });
        }
        KernelPackage {
            space: (v_min, v_max, c_min, c_max, self.space.nominal_vdd()),
            order: self.order,
            cells,
        }
    }

    /// Rebuilds a characterized library from a package, resolving cell
    /// names against `library`.
    ///
    /// The bilinear-LUT baseline and the fit reports are not part of a
    /// package; the restored library has an empty LUT and no reports.
    ///
    /// # Errors
    ///
    /// * [`DelayError::Characterization`] for unknown cell names, shape
    ///   inconsistencies or an invalid space,
    /// * [`DelayError::BadCoefficients`] if a coefficient vector does not
    ///   match the declared order.
    pub fn from_package(
        package: &KernelPackage,
        library: &CellLibrary,
    ) -> Result<CharacterizedLibrary, DelayError> {
        let (v_min, v_max, c_min, c_max, v_nom) = package.space;
        let space = ParameterSpace::new(v_min, v_max, c_min, c_max, v_nom)?;
        let mut table = CoefficientTable::new(library.len(), package.order);
        let mut nominal: Vec<Option<Vec<[NominalCurve; 2]>>> =
            (0..library.len()).map(|_| None).collect();
        for cell_data in &package.cells {
            let id = library
                .find(&cell_data.cell)
                .ok_or_else(|| DelayError::Characterization {
                    cell: cell_data.cell.clone(),
                    message: "cell not present in the library".to_owned(),
                })?;
            let expected_pins = library.cell(id).num_inputs();
            if cell_data.pins.len() != expected_pins {
                return Err(DelayError::Characterization {
                    cell: cell_data.cell.clone(),
                    message: format!(
                        "package has {} pins, library cell has {expected_pins}",
                        cell_data.pins.len()
                    ),
                });
            }
            let mut surfaces = Vec::with_capacity(cell_data.pins.len());
            let mut curves = Vec::with_capacity(cell_data.pins.len());
            for pin in &cell_data.pins {
                let shape_ok = pin.loads_ff.len() == pin.nominal_rise_ps.len()
                    && pin.loads_ff.len() == pin.nominal_fall_ps.len()
                    && pin.loads_ff.len() >= 2;
                if !shape_ok {
                    return Err(DelayError::Characterization {
                        cell: cell_data.cell.clone(),
                        message: "nominal curve shape mismatch".to_owned(),
                    });
                }
                surfaces.push([
                    SurfacePolynomial::new(package.order, pin.rise_coeffs.clone())?,
                    SurfacePolynomial::new(package.order, pin.fall_coeffs.clone())?,
                ]);
                curves.push([
                    NominalCurve {
                        loads_ff: pin.loads_ff.clone(),
                        delays_ps: pin.nominal_rise_ps.clone(),
                    },
                    NominalCurve {
                        loads_ff: pin.loads_ff.clone(),
                        delays_ps: pin.nominal_fall_ps.clone(),
                    },
                ]);
            }
            table.insert(id, &surfaces)?;
            nominal[id.index()] = Some(curves);
        }
        Ok(CharacterizedLibrary {
            space,
            order: package.order,
            model: PolynomialModel::new(table, space),
            lut: LutModel::new(library.len(), space),
            nominal,
            reports: Vec::new(),
        })
    }
}

/// Builds the normalized deviation grid of one sweep surface: the
/// regression target `y(v, c) = d(v, c) / d(V_nom, c) − 1` over
/// `(φ_V, φ_C)` axes (the input to Fig. 1 steps B–C).
///
/// # Errors
///
/// Returns [`DelayError::Characterization`] if the space's nominal voltage
/// is not on the sweep grid or the surface is degenerate.
pub fn deviation_grid(
    surface: &avfs_spice::DelaySurface,
    space: &ParameterSpace,
) -> Result<DataGrid, DelayError> {
    let err = |message: &str| DelayError::Characterization {
        cell: String::new(),
        message: message.to_owned(),
    };
    let nom_idx = surface
        .voltages
        .iter()
        .position(|&v| (v - space.nominal_vdd()).abs() < 1e-9)
        .ok_or_else(|| err("nominal voltage not on the sweep grid"))?;
    let xs: Vec<f64> = surface
        .voltages
        .iter()
        .map(|&v| space.phi_v().apply(v))
        .collect();
    let ys: Vec<f64> = surface
        .loads_ff
        .iter()
        .map(|&c| space.phi_c().apply(c))
        .collect();
    let mut dev = Vec::with_capacity(xs.len() * ys.len());
    for i in 0..xs.len() {
        for j in 0..ys.len() {
            let nominal = surface.at(nom_idx, j);
            if nominal <= 0.0 {
                return Err(err("non-positive nominal delay in sweep"));
            }
            dev.push(surface.at(i, j) / nominal - 1.0);
        }
    }
    DataGrid::new(xs, ys, dev).map_err(|e| err(&e.to_string()))
}

/// One fitted deviation surface plus its quality metrics.
#[derive(Debug, Clone)]
pub struct GridFit {
    /// The compiled polynomial (step D).
    pub poly: SurfacePolynomial,
    /// Relative delay errors on the probe lattice (Fig. 4 raw data).
    pub probe_errors: Vec<f64>,
    /// Error statistics over the probe lattice.
    pub stats: ErrorStats,
    /// Regression wall-clock, milliseconds.
    pub fit_millis: f64,
}

/// Fits one deviation grid: densification (step B), OLS regression
/// (step C), compilation (step D) and the probe-lattice error evaluation
/// of Fig. 4 against the linearly interpolated reference.
///
/// # Errors
///
/// Returns [`DelayError::Characterization`] wrapping regression failures.
pub fn fit_deviation_grid(
    grid: &DataGrid,
    order: usize,
    refine_factor: usize,
    probe_grid: usize,
) -> Result<GridFit, DelayError> {
    fit_deviation_grid_metered(grid, order, refine_factor, probe_grid, None)
}

/// [`fit_deviation_grid`] with optional instrumentation: the regression
/// step records `"regression/fit"` timing, the `"regression.fits"`
/// counter and the `"regression.fit_ns"` histogram (see
/// [`avfs_regression::fit_least_squares_metered`]).
///
/// # Errors
///
/// Identical to [`fit_deviation_grid`].
pub fn fit_deviation_grid_metered(
    grid: &DataGrid,
    order: usize,
    refine_factor: usize,
    probe_grid: usize,
    metrics: Option<&Metrics>,
) -> Result<GridFit, DelayError> {
    let refined = grid.refine(refine_factor.max(1));
    let basis = PolyBasis::new(order);
    let samples: Vec<(f64, f64)> = refined.samples().map(|(v, c, _)| (v, c)).collect();
    let targets: Vec<f64> = refined.samples().map(|(_, _, d)| d).collect();
    let t0 = Instant::now();
    let beta = fit_least_squares_metered(&basis, &samples, &targets, metrics).map_err(|e| {
        DelayError::Characterization {
            cell: String::new(),
            message: e.to_string(),
        }
    })?;
    let fit_millis = t0.elapsed().as_secs_f64() * 1e3;
    let poly = SurfacePolynomial::new(order, beta)?;

    let (pvs, pcs) = refined.equidistant_probes(probe_grid);
    let mut probe_errors = Vec::with_capacity(pvs.len() * pcs.len());
    for &pv in &pvs {
        for &pc in &pcs {
            let reference = 1.0 + refined.sample(pv, pc);
            let predicted = 1.0 + poly.eval(crate::op::NormalizedPoint { v: pv, c: pc });
            probe_errors.push((predicted - reference) / reference);
        }
    }
    let stats = ErrorStats::from_errors(probe_errors.iter().copied());
    Ok(GridFit {
        poly,
        probe_errors,
        stats,
        fit_millis,
    })
}

/// Runs the Fig. 1 flow for `cells` (or the whole library when `None`).
///
/// # Errors
///
/// Returns [`DelayError::Characterization`] wrapping any sweep or
/// regression failure, tagged with the failing cell.
pub fn characterize_library(
    library: &CellLibrary,
    tech: &Technology,
    config: &CharacterizationConfig,
    cells: Option<&[CellId]>,
) -> Result<CharacterizedLibrary, DelayError> {
    characterize_library_metered(library, tech, config, cells, None)
}

/// [`characterize_library`] with optional instrumentation: each per-cell
/// flow records `"delay/characterize"` timing, the sweeps record
/// `"spice/sweep"` / `"spice.transient_points"` and the fits record
/// `"regression/fit"` / `"regression.fits"` / `"regression.fit_ns"` — the
/// measured counterpart of the paper's 1–40 ms per-fit runtime claim
/// (Sec. V.A).
///
/// # Errors
///
/// Identical to [`characterize_library`].
pub fn characterize_library_metered(
    library: &CellLibrary,
    tech: &Technology,
    config: &CharacterizationConfig,
    cells: Option<&[CellId]>,
    metrics: Option<&Metrics>,
) -> Result<CharacterizedLibrary, DelayError> {
    characterize_library_injected(
        library,
        tech,
        config,
        cells,
        metrics,
        &avfs_inject::Injector::unarmed(),
    )
}

/// [`characterize_library_metered`] with a fault injector: an armed plan
/// firing [`avfs_inject::InjectionSite::SpiceFailure`] (keyed by the cell
/// index, salt 0) makes that cell's characterization fail with
/// [`DelayError::Characterization`], rehearsing a transistor-level sweep
/// blowing up mid-flow. An unarmed injector (or an empty plan) is
/// behaviorally identical to [`characterize_library_metered`].
///
/// # Errors
///
/// Identical to [`characterize_library`], plus the injected failure.
pub fn characterize_library_injected(
    library: &CellLibrary,
    tech: &Technology,
    config: &CharacterizationConfig,
    cells: Option<&[CellId]>,
    metrics: Option<&Metrics>,
    injector: &avfs_inject::Injector,
) -> Result<CharacterizedLibrary, DelayError> {
    let (v_min, v_max) = (
        config.sweep.voltages[0],
        *config.sweep.voltages.last().expect("validated below"),
    );
    let (c_min, c_max) = (
        config.sweep.loads_ff[0],
        *config.sweep.loads_ff.last().expect("validated below"),
    );
    config
        .sweep
        .validate()
        .map_err(|e| DelayError::Characterization {
            cell: String::new(),
            message: e.to_string(),
        })?;
    let space = ParameterSpace::new(v_min, v_max, c_min, c_max, config.sweep.nominal_vdd)?;

    let all_ids: Vec<CellId>;
    let selected: &[CellId] = match cells {
        Some(ids) => ids,
        None => {
            all_ids = library.iter().map(|(id, _)| id).collect();
            &all_ids
        }
    };

    let mut table = CoefficientTable::new(library.len(), config.order);
    let mut lut = LutModel::new(library.len(), space);
    let mut nominal: Vec<Option<Vec<[NominalCurve; 2]>>> =
        (0..library.len()).map(|_| None).collect();
    let mut reports = Vec::with_capacity(selected.len());
    let _basis = PolyBasis::new(config.order);

    // Index of the nominal voltage within the sweep.
    let nom_idx = config
        .sweep
        .voltages
        .iter()
        .position(|&v| (v - config.sweep.nominal_vdd).abs() < 1e-9)
        .expect("validated: nominal on grid");

    for &cell_id in selected {
        let cell_span = metrics.map(|m| m.span("delay/characterize"));
        let cell = library.cell(cell_id);
        // Injected SPICE failure: the whole flow aborts on the affected
        // cell, exactly as an organic sweep error would propagate.
        if injector.fires(
            avfs_inject::InjectionSite::SpiceFailure,
            cell_id.index() as u64,
            0,
        ) {
            return Err(DelayError::Characterization {
                cell: cell.name().to_owned(),
                message: "injected SPICE failure (transient sweep aborted)".to_owned(),
            });
        }
        let mut surfaces: Vec<[SurfacePolynomial; 2]> = Vec::with_capacity(cell.num_inputs());
        let mut lut_grids: Vec<[DataGrid; 2]> = Vec::with_capacity(cell.num_inputs());
        let mut curves: Vec<[NominalCurve; 2]> = Vec::with_capacity(cell.num_inputs());
        let mut errors: Vec<f64> = Vec::new();
        let mut fit_millis = 0.0;
        let mut sweep_millis = 0.0;

        for pin in 0..cell.num_inputs() {
            let mut pin_surfaces: Vec<SurfacePolynomial> = Vec::with_capacity(2);
            let mut pin_grids: Vec<DataGrid> = Vec::with_capacity(2);
            let mut pin_curves: Vec<NominalCurve> = Vec::with_capacity(2);
            for polarity in Polarity::both() {
                let wrap = |message: String| DelayError::Characterization {
                    cell: cell.name().to_owned(),
                    message,
                };
                // Step A: transient sweep.
                let t0 = Instant::now();
                let surface = sweep_pin_metered(tech, cell, pin, polarity, &config.sweep, metrics)
                    .map_err(|e| wrap(e.to_string()))?;
                sweep_millis += t0.elapsed().as_secs_f64() * 1e3;

                // Nominal curve (the SDF view).
                let loads = surface.loads_ff.clone();
                let nominal_delays: Vec<f64> =
                    (0..loads.len()).map(|j| surface.at(nom_idx, j)).collect();

                // Steps B–D plus the Fig. 4 error evaluation.
                let grid = deviation_grid(&surface, &space).map_err(|e| match e {
                    DelayError::Characterization { message, .. } => wrap(message),
                    other => other,
                })?;
                let fit = fit_deviation_grid_metered(
                    &grid,
                    config.order,
                    config.refine_factor,
                    config.probe_grid,
                    metrics,
                )
                .map_err(|e| match e {
                    DelayError::Characterization { message, .. } => wrap(message),
                    other => other,
                })?;
                fit_millis += fit.fit_millis;
                errors.extend(fit.probe_errors);

                pin_surfaces.push(fit.poly);
                pin_grids.push(grid);
                pin_curves.push(NominalCurve {
                    loads_ff: loads,
                    delays_ps: nominal_delays,
                });
            }
            let [s_rise, s_fall] =
                <[SurfacePolynomial; 2]>::try_from(pin_surfaces).expect("exactly two polarities");
            surfaces.push([s_rise, s_fall]);
            let [g_rise, g_fall] =
                <[DataGrid; 2]>::try_from(pin_grids).expect("exactly two polarities");
            lut_grids.push([g_rise, g_fall]);
            let [c_rise, c_fall] =
                <[NominalCurve; 2]>::try_from(pin_curves).expect("exactly two polarities");
            curves.push([c_rise, c_fall]);
        }

        table.insert(cell_id, &surfaces)?;
        lut.insert(cell_id, lut_grids)?;
        nominal[cell_id.index()] = Some(curves);
        reports.push(CharacterizationReport {
            cell: cell.name().to_owned(),
            stats: ErrorStats::from_errors(errors),
            fit_millis,
            sweep_millis,
        });
        if let Some(span) = cell_span {
            span.finish();
        }
    }

    Ok(CharacterizedLibrary {
        space,
        order: config.order,
        model: PolynomialModel::new(table, space),
        lut,
        nominal,
        reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DelayModel;
    use crate::op::OperatingPoint;
    use avfs_netlist::bench::{parse_bench, BenchOptions, C17_BENCH};

    fn subset(lib: &CellLibrary, names: &[&str]) -> Vec<CellId> {
        names
            .iter()
            .map(|n| lib.find(n).expect("cell exists"))
            .collect()
    }

    #[test]
    fn characterize_inverter_fast() {
        let lib = CellLibrary::nangate15_like();
        let tech = Technology::nm15();
        let cfg = CharacterizationConfig::fast();
        let ids = subset(&lib, &["INV_X1"]);
        let ch = characterize_library(&lib, &tech, &cfg, Some(&ids)).unwrap();
        assert_eq!(ch.order(), cfg.order);
        assert_eq!(ch.reports().len(), 1);
        let report = &ch.reports()[0];
        assert_eq!(report.cell, "INV_X1");
        // The surface is smooth; even a coarse fit should be within a few
        // percent on average.
        assert!(
            report.stats.mean < 0.05,
            "mean rel err {}",
            report.stats.mean
        );
        assert!(report.fit_millis >= 0.0);

        // Factor ≈ 1 at nominal voltage for any load.
        let id = ids[0];
        for c in [0.5, 2.0, 32.0, 128.0] {
            let p = ch.space().normalize(OperatingPoint::new(0.8, c)).unwrap();
            let f = ch.model().factor(id, 0, Polarity::Fall, p).unwrap();
            assert!((f - 1.0).abs() < 0.05, "nominal factor {f} at c={c}");
        }
        // Factor > 1 at low voltage, < 1 at high voltage.
        let lo = ch
            .space()
            .normalize(OperatingPoint::new(0.55, 4.0))
            .unwrap();
        let hi = ch.space().normalize(OperatingPoint::new(1.1, 4.0)).unwrap();
        assert!(ch.model().factor(id, 0, Polarity::Fall, lo).unwrap() > 1.15);
        assert!(ch.model().factor(id, 0, Polarity::Fall, hi).unwrap() < 0.95);
    }

    #[test]
    fn injected_spice_failure_aborts_the_flow() {
        let lib = CellLibrary::nangate15_like();
        let tech = Technology::nm15();
        let cfg = CharacterizationConfig::fast();
        let ids = subset(&lib, &["INV_X1"]);
        let plan = std::sync::Arc::new(
            avfs_inject::FaultPlan::empty(2)
                .with_rate(avfs_inject::InjectionSite::SpiceFailure, 1.0),
        );
        let err = characterize_library_injected(
            &lib,
            &tech,
            &cfg,
            Some(&ids),
            None,
            &avfs_inject::Injector::armed(std::sync::Arc::clone(&plan)),
        )
        .unwrap_err();
        match err {
            DelayError::Characterization { cell, message } => {
                assert_eq!(cell, "INV_X1");
                assert!(message.contains("injected"), "{message}");
            }
            other => panic!("expected Characterization, got {other:?}"),
        }
        assert_eq!(
            plan.fired_keys(avfs_inject::InjectionSite::SpiceFailure),
            vec![ids[0].index() as u64]
        );
        // An empty plan characterizes normally.
        let empty = std::sync::Arc::new(avfs_inject::FaultPlan::empty(2));
        let ch = characterize_library_injected(
            &lib,
            &tech,
            &cfg,
            Some(&ids),
            None,
            &avfs_inject::Injector::armed(std::sync::Arc::clone(&empty)),
        )
        .unwrap();
        assert_eq!(ch.reports().len(), 1);
        assert_eq!(empty.total_fired(), 0);
    }

    #[test]
    fn polynomial_beats_nothing_and_tracks_lut() {
        let lib = CellLibrary::nangate15_like();
        let tech = Technology::nm15();
        let cfg = CharacterizationConfig::fast();
        let ids = subset(&lib, &["NOR2_X2"]);
        let ch = characterize_library(&lib, &tech, &cfg, Some(&ids)).unwrap();
        let id = ids[0];
        // The polynomial and the LUT (same training data) should agree
        // closely everywhere on the grid interior.
        for &(v, c) in &[(0.6, 1.0), (0.8, 8.0), (1.0, 64.0)] {
            let p = ch.space().normalize(OperatingPoint::new(v, c)).unwrap();
            let f_poly = ch.model().factor(id, 0, Polarity::Rise, p).unwrap();
            let f_lut = ch.lut().factor(id, 0, Polarity::Rise, p).unwrap();
            assert!(
                (f_poly - f_lut).abs() / f_lut < 0.08,
                "poly {f_poly} vs lut {f_lut} at ({v},{c})"
            );
        }
    }

    #[test]
    fn annotation_from_characterization() {
        let lib = CellLibrary::nangate15_like();
        let tech = Technology::nm15();
        let cfg = CharacterizationConfig::fast();
        let ids = subset(&lib, &["NAND2_X1"]);
        let ch = characterize_library(&lib, &tech, &cfg, Some(&ids)).unwrap();
        let c17 = parse_bench("c17", C17_BENCH, &lib, &BenchOptions::default()).unwrap();
        let ann = ch.annotate(&c17).unwrap();
        assert!(ann.matches(&c17));
        // Every gate pin must have a positive delay.
        for (id, node) in c17.iter() {
            if matches!(node.kind(), NodeKind::Gate(_)) {
                for pin in 0..node.fanin().len() {
                    let d = ann.pin_delays(id, pin);
                    assert!(d.rise > 0.0 && d.fall > 0.0);
                }
            }
        }
        // Gates driving more load must be slower: gate "16" drives two
        // sinks, gate "10" drives one.
        let g16 = c17.find("16").unwrap();
        let g10 = c17.find("10").unwrap();
        assert!(ann.load_ff(g16) > ann.load_ff(g10));
        assert!(ann.pin_delays(g16, 0).rise > ann.pin_delays(g10, 0).rise);
    }

    #[test]
    fn uncharacterized_cell_fails_annotation() {
        let lib = CellLibrary::nangate15_like();
        let tech = Technology::nm15();
        let cfg = CharacterizationConfig::fast();
        let ids = subset(&lib, &["INV_X1"]); // c17 needs NAND2_X1
        let ch = characterize_library(&lib, &tech, &cfg, Some(&ids)).unwrap();
        let c17 = parse_bench("c17", C17_BENCH, &lib, &BenchOptions::default()).unwrap();
        assert!(matches!(
            ch.annotate(&c17),
            Err(DelayError::MissingCell { .. })
        ));
    }

    #[test]
    fn nominal_curve_interpolation() {
        let curve = NominalCurve {
            loads_ff: vec![1.0, 4.0, 16.0],
            delays_ps: vec![10.0, 20.0, 30.0],
        };
        assert!((curve.delay_ps(1.0) - 10.0).abs() < 1e-12);
        assert!((curve.delay_ps(16.0) - 30.0).abs() < 1e-12);
        // Midpoint in log2 space: c = 2 between 1 and 4.
        assert!((curve.delay_ps(2.0) - 15.0).abs() < 1e-9);
        // Clamped outside.
        assert!((curve.delay_ps(0.1) - 10.0).abs() < 1e-12);
        assert!((curve.delay_ps(100.0) - 30.0).abs() < 1e-12);
        assert_eq!(curve.loads_ff().len(), 3);
        assert_eq!(curve.delays_ps().len(), 3);
    }

    #[test]
    fn higher_order_fits_are_tighter() {
        let lib = CellLibrary::nangate15_like();
        let tech = Technology::nm15();
        let ids = subset(&lib, &["NAND2_X1"]);
        let mut maxes = Vec::new();
        for order in [1usize, 3] {
            let cfg = CharacterizationConfig {
                order,
                ..CharacterizationConfig::fast()
            };
            let ch = characterize_library(&lib, &tech, &cfg, Some(&ids)).unwrap();
            maxes.push(ch.reports()[0].stats.max);
        }
        assert!(
            maxes[1] < maxes[0],
            "order 3 ({}) should beat order 1 ({})",
            maxes[1],
            maxes[0]
        );
    }
}
