//! Compiled delay-deviation surfaces (paper Eq. 4, evaluated as the GPU
//! delay kernel of Sec. IV).

use crate::op::NormalizedPoint;
use crate::DelayError;
use avfs_regression::poly::{eval_horner, PolyBasis};

/// A bivariate polynomial surface `f(v, c)` over normalized coordinates,
/// represented by its `(N+1)²` coefficients in Eq. 6 order.
///
/// # Example
///
/// ```
/// use avfs_delay::{SurfacePolynomial, NormalizedPoint};
///
/// # fn main() -> Result<(), avfs_delay::DelayError> {
/// // f(v, c) = 0.2 − 0.3·v (voltage-only linear deviation)
/// let poly = SurfacePolynomial::new(1, vec![0.2, 0.0, -0.3, 0.0])?;
/// let f = poly.eval(NormalizedPoint { v: 0.5, c: 0.7 });
/// assert!((f - 0.05).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SurfacePolynomial {
    order: usize,
    coeffs: Vec<f64>,
}

impl SurfacePolynomial {
    /// Creates a surface from per-variable order `N` and `(N+1)²`
    /// coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`DelayError::BadCoefficients`] on a length mismatch.
    pub fn new(order: usize, coeffs: Vec<f64>) -> Result<SurfacePolynomial, DelayError> {
        let expected = (order + 1) * (order + 1);
        if coeffs.len() != expected {
            return Err(DelayError::BadCoefficients {
                expected,
                got: coeffs.len(),
            });
        }
        Ok(SurfacePolynomial { order, coeffs })
    }

    /// The zero surface (no deviation at any operating point).
    pub fn zero(order: usize) -> SurfacePolynomial {
        SurfacePolynomial {
            order,
            coeffs: vec![0.0; (order + 1) * (order + 1)],
        }
    }

    /// Per-variable order `N`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// The coefficients in Eq. 6 order.
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// The matching regression basis.
    pub fn basis(&self) -> PolyBasis {
        PolyBasis::new(self.order)
    }

    /// Evaluates the deviation `f(P)` at a normalized operating point —
    /// the hot path of the online delay calculation. Nested Horner over
    /// both variables; every multiply-add fuses.
    #[inline]
    pub fn eval(&self, p: NormalizedPoint) -> f64 {
        eval_horner(self.order, &self.coeffs, p.v, p.c)
    }

    /// The multiplicative delay factor of Eq. 9: `1 + f(P)`.
    #[inline]
    pub fn factor(&self, p: NormalizedPoint) -> f64 {
        1.0 + self.eval(p)
    }

    /// Lane-batched [`SurfacePolynomial::eval`]: `out[k] = f(points[k])`.
    ///
    /// Gathers the points into lane-block coordinate buffers and runs the
    /// unrolled FMA kernel [`avfs_regression::poly::eval_horner_lanes`];
    /// every lane is bitwise identical to the scalar [`SurfacePolynomial::eval`].
    ///
    /// # Panics
    ///
    /// Panics if `points.len() != out.len()`.
    pub fn eval_lanes(&self, points: &[NormalizedPoint], out: &mut [f64]) {
        eval_lanes_with(self.order, &self.coeffs, points, out);
    }

    /// Lane-batched [`SurfacePolynomial::factor`]: `out[k] = 1 + f(points[k])`.
    ///
    /// # Panics
    ///
    /// Panics if `points.len() != out.len()`.
    pub fn factor_lanes(&self, points: &[NormalizedPoint], out: &mut [f64]) {
        self.eval_lanes(points, out);
        for o in out.iter_mut() {
            *o += 1.0;
        }
    }
}

/// Shared lane-gather helper: evaluates the surface `(order, beta)` at each
/// point, processing [`HORNER_LANE_BLOCK`]-wide blocks through the unrolled
/// kernel and the partial tail through scalar [`eval_horner`].
///
/// # Panics
///
/// Panics if `points.len() != out.len()`.
pub(crate) fn eval_lanes_with(
    order: usize,
    beta: &[f64],
    points: &[NormalizedPoint],
    out: &mut [f64],
) {
    use avfs_regression::poly::{eval_horner_lanes, HORNER_LANE_BLOCK};
    assert_eq!(points.len(), out.len(), "lane output length mismatch");
    let mut k = 0;
    let mut vb = [0.0f64; HORNER_LANE_BLOCK];
    let mut cb = [0.0f64; HORNER_LANE_BLOCK];
    while k + HORNER_LANE_BLOCK <= points.len() {
        for (j, p) in points[k..k + HORNER_LANE_BLOCK].iter().enumerate() {
            vb[j] = p.v;
            cb[j] = p.c;
        }
        eval_horner_lanes(order, beta, &vb, &cb, &mut out[k..k + HORNER_LANE_BLOCK]);
        k += HORNER_LANE_BLOCK;
    }
    for (p, o) in points[k..].iter().zip(out[k..].iter_mut()) {
        *o = eval_horner(order, beta, p.v, p.c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn coefficient_count_enforced() {
        assert!(SurfacePolynomial::new(3, vec![0.0; 16]).is_ok());
        assert!(matches!(
            SurfacePolynomial::new(3, vec![0.0; 15]),
            Err(DelayError::BadCoefficients {
                expected: 16,
                got: 15
            })
        ));
    }

    #[test]
    fn zero_surface_has_unit_factor() {
        let z = SurfacePolynomial::zero(3);
        for &(v, c) in &[(0.0, 0.0), (0.5, 0.5), (1.0, 1.0)] {
            let p = NormalizedPoint { v, c };
            assert_eq!(z.eval(p), 0.0);
            assert_eq!(z.factor(p), 1.0);
        }
    }

    #[test]
    fn eval_matches_basis_eval() {
        let coeffs: Vec<f64> = (0..16).map(|k| 0.01 * k as f64 - 0.05).collect();
        let s = SurfacePolynomial::new(3, coeffs.clone()).unwrap();
        let basis = s.basis();
        for &(v, c) in &[(0.1, 0.9), (0.5, 0.5), (0.99, 0.01)] {
            let via_basis = basis.eval(&coeffs, v, c).unwrap();
            assert!((s.eval(NormalizedPoint { v, c }) - via_basis).abs() < 1e-12);
        }
    }

    #[test]
    fn lane_eval_matches_scalar_bitwise() {
        let coeffs: Vec<f64> = (0..16).map(|k| 0.013 * k as f64 - 0.07).collect();
        let s = SurfacePolynomial::new(3, coeffs).unwrap();
        // Lengths around the unroll width exercise full blocks and tails.
        for len in 0..10usize {
            let points: Vec<NormalizedPoint> = (0..len)
                .map(|k| NormalizedPoint {
                    v: 0.03 + 0.1 * k as f64,
                    c: 0.97 - 0.09 * k as f64,
                })
                .collect();
            let mut evals = vec![0.0; len];
            let mut factors = vec![0.0; len];
            s.eval_lanes(&points, &mut evals);
            s.factor_lanes(&points, &mut factors);
            for (k, &p) in points.iter().enumerate() {
                assert_eq!(evals[k].to_bits(), s.eval(p).to_bits());
                assert_eq!(factors[k].to_bits(), s.factor(p).to_bits());
            }
        }
    }

    proptest! {
        #[test]
        fn factor_is_one_plus_eval(v in 0.0f64..1.0, c in 0.0f64..1.0) {
            let coeffs: Vec<f64> = (0..9).map(|k| (k as f64) * 0.013 - 0.04).collect();
            let s = SurfacePolynomial::new(2, coeffs).unwrap();
            let p = NormalizedPoint { v, c };
            prop_assert!((s.factor(p) - (1.0 + s.eval(p))).abs() < 1e-15);
        }
    }
}
