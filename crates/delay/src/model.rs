//! Delay-model abstraction and the paper's model family.
//!
//! The simulator asks one question per (gate, pin, polarity, operating
//! point): *by what factor does this delay deviate from its nominal
//! annotation?* The implementations answer it differently:
//!
//! * [`StaticModel`] — factor 1 everywhere; the conventional static-delay
//!   simulation the paper compares against (Table I, columns 4–6),
//! * [`PolynomialModel`] — the paper's contribution: compiled surface
//!   polynomials evaluated by nested Horner (Sec. III/IV),
//! * [`LutModel`] — bilinear interpolation in a look-up table, the
//!   "traditional validation approach" of Sec. II whose size/accuracy
//!   trade-off motivates the polynomial model,
//! * [`AlphaPowerModel`] — the closed-form α-power law (Eq. 1), an
//!   analytical baseline that ignores the load dependence of the
//!   sensitivity.
//!
//! All models are `Send + Sync`: one instance is shared read-only by every
//! simulation thread, mirroring the constant-memory coefficient array on
//! the GPU.

use crate::op::{NormalizedPoint, ParameterSpace};
use crate::table::CoefficientTable;
use crate::DelayError;
use avfs_netlist::library::{CellId, Polarity};
use avfs_obs::Counter;
use avfs_regression::DataGrid;
use std::fmt;

/// A parametric delay model: multiplicative deviation factors relative to
/// the nominal annotation.
pub trait DelayModel: Send + Sync + fmt::Debug {
    /// The multiplicative factor `d'/d_nom` for (cell, pin, polarity) at a
    /// normalized operating point.
    ///
    /// # Errors
    ///
    /// Returns a [`DelayError`] if the model has no data for the cell/pin.
    fn factor(
        &self,
        cell: CellId,
        pin: usize,
        polarity: Polarity,
        p: NormalizedPoint,
    ) -> Result<f64, DelayError>;

    /// Lane-batched [`DelayModel::factor`]: `out[k] = factor(points[k])`
    /// for a whole lane group sharing one (cell, pin, polarity).
    ///
    /// The default implementation is the scalar loop, so every model keeps
    /// its exact per-point semantics (including panics and errors surfacing
    /// at the same point index). Models with a vectorizable kernel override
    /// this — [`PolynomialModel`] batches the nested Horner reduction
    /// through unrolled FMA blocks while staying bitwise identical to the
    /// scalar path.
    ///
    /// # Errors
    ///
    /// Returns the first [`DelayError`] encountered, leaving later lanes
    /// unwritten.
    ///
    /// # Panics
    ///
    /// Panics if `points.len() != out.len()`.
    fn factor_lanes(
        &self,
        cell: CellId,
        pin: usize,
        polarity: Polarity,
        points: &[NormalizedPoint],
        out: &mut [f64],
    ) -> Result<(), DelayError> {
        assert_eq!(points.len(), out.len(), "lane output length mismatch");
        for (p, o) in points.iter().zip(out.iter_mut()) {
            *o = self.factor(cell, pin, polarity, *p)?;
        }
        Ok(())
    }

    /// A short human-readable model name for reports.
    fn name(&self) -> &str;

    /// The parameter space the model was built over.
    fn space(&self) -> &ParameterSpace;
}

/// Factor-1 model: static nominal delays (the conventional simulator).
#[derive(Debug, Clone)]
pub struct StaticModel {
    space: ParameterSpace,
}

impl StaticModel {
    /// Creates a static model over a parameter space (the space is only
    /// used for normalization bookkeeping).
    pub fn new(space: ParameterSpace) -> StaticModel {
        StaticModel { space }
    }
}

impl DelayModel for StaticModel {
    fn factor(
        &self,
        _cell: CellId,
        _pin: usize,
        _polarity: Polarity,
        _p: NormalizedPoint,
    ) -> Result<f64, DelayError> {
        Ok(1.0)
    }

    fn name(&self) -> &str {
        "static"
    }

    fn space(&self) -> &ParameterSpace {
        &self.space
    }
}

/// The paper's polynomial model: a [`CoefficientTable`] over a
/// [`ParameterSpace`].
#[derive(Debug, Clone)]
pub struct PolynomialModel {
    table: CoefficientTable,
    space: ParameterSpace,
    /// Optional kernel-evaluation counter (see
    /// [`PolynomialModel::metered`]); `None` costs one branch per call.
    evals: Option<Counter>,
}

impl PolynomialModel {
    /// Wraps a coefficient table.
    pub fn new(table: CoefficientTable, space: ParameterSpace) -> PolynomialModel {
        PolynomialModel {
            table,
            space,
            evals: None,
        }
    }

    /// Like [`PolynomialModel::new`], but every successful
    /// [`DelayModel::factor`] call additionally bumps `evals` — a
    /// lock-free [`Counter`] handle, typically
    /// `metrics.counter("delay.kernel_evals")`, shared with the profile
    /// that reports it.
    pub fn metered(
        table: CoefficientTable,
        space: ParameterSpace,
        evals: Counter,
    ) -> PolynomialModel {
        PolynomialModel {
            table,
            space,
            evals: Some(evals),
        }
    }

    /// The underlying coefficient table.
    pub fn table(&self) -> &CoefficientTable {
        &self.table
    }

    /// Per-variable polynomial order `N`.
    pub fn order(&self) -> usize {
        self.table.order()
    }
}

impl DelayModel for PolynomialModel {
    #[inline]
    fn factor(
        &self,
        cell: CellId,
        pin: usize,
        polarity: Polarity,
        p: NormalizedPoint,
    ) -> Result<f64, DelayError> {
        let d = self.table.deviation(cell, pin, polarity, p)?;
        if let Some(evals) = &self.evals {
            evals.incr();
        }
        Ok(1.0 + d)
    }

    #[inline]
    fn factor_lanes(
        &self,
        cell: CellId,
        pin: usize,
        polarity: Polarity,
        points: &[NormalizedPoint],
        out: &mut [f64],
    ) -> Result<(), DelayError> {
        self.table
            .deviation_lanes(cell, pin, polarity, points, out)?;
        for o in out.iter_mut() {
            *o += 1.0;
        }
        if let Some(evals) = &self.evals {
            // Same total as points.len() scalar factor() calls.
            evals.add(points.len() as u64);
        }
        Ok(())
    }

    fn name(&self) -> &str {
        "polynomial"
    }

    fn space(&self) -> &ParameterSpace {
        &self.space
    }
}

/// Bilinear look-up-table model over normalized coordinates — the
/// conventional interpolation approach of Sec. II.
pub struct LutModel {
    /// `grids[cell][pin][polarity]` over normalized `(v, c)` holding
    /// deviation values.
    grids: Vec<Option<Vec<[DataGrid; 2]>>>,
    space: ParameterSpace,
}

impl LutModel {
    /// Creates an empty LUT model for `num_cells` cell types.
    pub fn new(num_cells: usize, space: ParameterSpace) -> LutModel {
        LutModel {
            grids: (0..num_cells).map(|_| None).collect(),
            space,
        }
    }

    /// Installs the per-pin grids of one cell.
    ///
    /// # Errors
    ///
    /// Returns [`DelayError::MissingCell`] if `cell` is out of range.
    pub fn insert(&mut self, cell: CellId, grids: Vec<[DataGrid; 2]>) -> Result<(), DelayError> {
        let idx = cell.index();
        if idx >= self.grids.len() {
            return Err(DelayError::MissingCell { cell_index: idx });
        }
        self.grids[idx] = Some(grids);
        Ok(())
    }

    /// Total stored samples — the memory-footprint comparison point against
    /// the polynomial table.
    pub fn stored_samples(&self) -> usize {
        self.grids
            .iter()
            .flatten()
            .flat_map(|pins| pins.iter())
            .flat_map(|pair| pair.iter())
            .map(DataGrid::len)
            .sum()
    }
}

impl fmt::Debug for LutModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LutModel")
            .field("cells", &self.grids.iter().filter(|g| g.is_some()).count())
            .field("stored_samples", &self.stored_samples())
            .finish()
    }
}

impl DelayModel for LutModel {
    fn factor(
        &self,
        cell: CellId,
        pin: usize,
        polarity: Polarity,
        p: NormalizedPoint,
    ) -> Result<f64, DelayError> {
        let idx = cell.index();
        let pins = self
            .grids
            .get(idx)
            .and_then(Option::as_ref)
            .ok_or(DelayError::MissingCell { cell_index: idx })?;
        let pair = pins
            .get(pin)
            .ok_or(DelayError::MissingCell { cell_index: idx })?;
        Ok(1.0 + pair[polarity.index()].sample(p.v, p.c))
    }

    fn name(&self) -> &str {
        "lut-bilinear"
    }

    fn space(&self) -> &ParameterSpace {
        &self.space
    }
}

/// Closed-form α-power-law model (paper Eq. 1):
///
/// ```text
/// factor(v) = (v / V_nom) · ((V_nom − V_th) / (v − V_th))^α
/// ```
///
/// Load-independent by construction — its systematic error versus the
/// polynomial model is an ablation the benches report.
#[derive(Debug, Clone)]
pub struct AlphaPowerModel {
    vth: f64,
    alpha: f64,
    space: ParameterSpace,
}

impl AlphaPowerModel {
    /// Creates the analytic model with technology parameters.
    pub fn new(vth: f64, alpha: f64, space: ParameterSpace) -> AlphaPowerModel {
        AlphaPowerModel { vth, alpha, space }
    }

    /// The deviation factor at raw voltage `v`.
    pub fn factor_at_voltage(&self, v: f64) -> f64 {
        let vnom = self.space.nominal_vdd();
        (v / vnom) * ((vnom - self.vth) / (v - self.vth)).powf(self.alpha)
    }
}

impl DelayModel for AlphaPowerModel {
    fn factor(
        &self,
        _cell: CellId,
        _pin: usize,
        _polarity: Polarity,
        p: NormalizedPoint,
    ) -> Result<f64, DelayError> {
        // Undo φ_V to recover the raw voltage.
        let v = self.space.phi_v().invert(p.v);
        Ok(self.factor_at_voltage(v))
    }

    fn name(&self) -> &str {
        "alpha-power"
    }

    fn space(&self) -> &ParameterSpace {
        &self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polynomial::SurfacePolynomial;

    fn space() -> ParameterSpace {
        ParameterSpace::paper()
    }

    fn mid() -> NormalizedPoint {
        NormalizedPoint { v: 0.5, c: 0.5 }
    }

    #[test]
    fn static_model_always_one() {
        let m = StaticModel::new(space());
        assert_eq!(m.name(), "static");
        for &(v, c) in &[(0.0, 0.0), (0.3, 0.9), (1.0, 1.0)] {
            let f = m
                .factor(
                    CellId::from_index(0),
                    0,
                    Polarity::Rise,
                    NormalizedPoint { v, c },
                )
                .unwrap();
            assert_eq!(f, 1.0);
        }
    }

    #[test]
    fn polynomial_model_wraps_table() {
        let mut table = CoefficientTable::new(2, 1);
        let mut coeffs = vec![0.0; 4];
        coeffs[0] = 0.25;
        let s = SurfacePolynomial::new(1, coeffs).unwrap();
        table
            .insert(CellId::from_index(0), &[[s.clone(), s]])
            .unwrap();
        let m = PolynomialModel::new(table, space());
        assert_eq!(m.order(), 1);
        let f = m
            .factor(CellId::from_index(0), 0, Polarity::Fall, mid())
            .unwrap();
        assert!((f - 1.25).abs() < 1e-12);
        assert!(m
            .factor(CellId::from_index(1), 0, Polarity::Fall, mid())
            .is_err());
    }

    #[test]
    fn lut_model_interpolates() {
        let mut m = LutModel::new(1, space());
        // Deviation grid: +0.5 at v=0 shrinking to 0 at v=1, flat in c.
        let grid =
            DataGrid::from_fn(vec![0.0, 1.0], vec![0.0, 1.0], |v, _| 0.5 * (1.0 - v)).unwrap();
        m.insert(CellId::from_index(0), vec![[grid.clone(), grid]])
            .unwrap();
        let f = m
            .factor(CellId::from_index(0), 0, Polarity::Rise, mid())
            .unwrap();
        assert!((f - 1.25).abs() < 1e-12);
        assert_eq!(m.stored_samples(), 8);
        assert!(m
            .factor(CellId::from_index(0), 3, Polarity::Rise, mid())
            .is_err());
    }

    #[test]
    fn alpha_power_is_one_at_nominal_and_monotone() {
        let m = AlphaPowerModel::new(0.24, 1.35, space());
        assert!((m.factor_at_voltage(0.8) - 1.0).abs() < 1e-12);
        assert!(m.factor_at_voltage(0.55) > 1.0, "slower below nominal");
        assert!(m.factor_at_voltage(1.1) < 1.0, "faster above nominal");
        // Through the trait, normalized v=~0.4545 is raw 0.8.
        let p_nom = space()
            .normalize(crate::op::OperatingPoint::new(0.8, 4.0))
            .unwrap();
        let f = m
            .factor(CellId::from_index(0), 0, Polarity::Rise, p_nom)
            .unwrap();
        assert!((f - 1.0).abs() < 1e-9);
    }

    #[test]
    fn polynomial_factor_lanes_matches_scalar_bitwise() {
        let mut table = CoefficientTable::new(1, 2);
        let coeffs: Vec<f64> = (0..9).map(|k| 0.017 * k as f64 - 0.05).collect();
        let s = SurfacePolynomial::new(2, coeffs).unwrap();
        table
            .insert(CellId::from_index(0), &[[s.clone(), s]])
            .unwrap();
        let m = PolynomialModel::new(table, space());
        let cell = CellId::from_index(0);
        for len in [0usize, 1, 4, 5, 9] {
            let points: Vec<NormalizedPoint> = (0..len)
                .map(|k| NormalizedPoint {
                    v: 0.04 + 0.09 * k as f64,
                    c: 0.93 - 0.08 * k as f64,
                })
                .collect();
            let mut out = vec![0.0; len];
            m.factor_lanes(cell, 0, Polarity::Fall, &points, &mut out)
                .unwrap();
            for (k, &p) in points.iter().enumerate() {
                let scalar = m.factor(cell, 0, Polarity::Fall, p).unwrap();
                assert_eq!(out[k].to_bits(), scalar.to_bits());
            }
        }
        // Missing cell propagates from the batch path too.
        let mut out = [0.0; 1];
        assert!(m
            .factor_lanes(
                CellId::from_index(1),
                0,
                Polarity::Rise,
                &[NormalizedPoint { v: 0.5, c: 0.5 }],
                &mut out
            )
            .is_err());
    }

    #[test]
    fn metered_lane_counts_match_scalar_counts() {
        use avfs_obs::Metrics;
        let mut table = CoefficientTable::new(1, 1);
        let s = SurfacePolynomial::zero(1);
        table
            .insert(CellId::from_index(0), &[[s.clone(), s]])
            .unwrap();
        let metrics = Metrics::new("lane-meter");
        let m = PolynomialModel::metered(table, space(), metrics.counter("delay.kernel_evals"));
        let cell = CellId::from_index(0);
        let points = [NormalizedPoint { v: 0.2, c: 0.3 }; 7];
        let mut out = [0.0; 7];
        m.factor_lanes(cell, 0, Polarity::Rise, &points, &mut out)
            .unwrap();
        for &p in &points {
            m.factor(cell, 0, Polarity::Rise, p).unwrap();
        }
        // Batched and scalar paths meter one eval per lane each.
        assert_eq!(metrics.counter("delay.kernel_evals").get(), 14);
    }

    #[test]
    fn default_factor_lanes_is_the_scalar_loop() {
        let m = StaticModel::new(space());
        let points = [NormalizedPoint { v: 0.1, c: 0.9 }; 5];
        let mut out = [0.0; 5];
        m.factor_lanes(CellId::from_index(0), 0, Polarity::Rise, &points, &mut out)
            .unwrap();
        assert_eq!(out, [1.0; 5]);
    }

    #[test]
    fn models_are_object_safe_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StaticModel>();
        assert_send_sync::<PolynomialModel>();
        assert_send_sync::<LutModel>();
        assert_send_sync::<AlphaPowerModel>();
        let boxed: Box<dyn DelayModel> = Box::new(StaticModel::new(space()));
        assert_eq!(boxed.name(), "static");
    }
}
