//! Operating points and the constrained parameter space `𝒫 ⊆ ℝ²`.

use crate::DelayError;
use avfs_regression::{CapNormalizer, VoltageNormalizer};

/// One operating point `P = (v, c)`: supply voltage (V) and load
/// capacitance (fF).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Supply voltage, V.
    pub voltage: f64,
    /// Load capacitance, fF.
    pub load_ff: f64,
}

impl OperatingPoint {
    /// Creates an operating point.
    pub fn new(voltage: f64, load_ff: f64) -> OperatingPoint {
        OperatingPoint { voltage, load_ff }
    }
}

/// An operating point mapped to the unit square by `φ_V` / `φ_C`.
///
/// Simulation kernels consume pre-normalized coordinates so that the inner
/// loop is pure Horner arithmetic (the paper normalizes once per slot when
/// the operating point is assigned).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalizedPoint {
    /// `φ_V(v) ∈ [0, 1]`.
    pub v: f64,
    /// `φ_C(c) ∈ [0, 1]`.
    pub c: f64,
}

/// The constrained two-dimensional parameter space of the characterization:
/// `v ∈ [V_min, V_max]`, `c ∈ [C_min, C_max]`, with a distinguished nominal
/// voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParameterSpace {
    phi_v: VoltageNormalizer,
    phi_c: CapNormalizer,
    nominal_vdd: f64,
}

impl ParameterSpace {
    /// Creates a parameter space.
    ///
    /// # Errors
    ///
    /// Returns [`DelayError::OutOfRange`] if the nominal voltage lies
    /// outside `[v_min, v_max]`, and propagates interval validation from
    /// the normalizers as [`DelayError::Characterization`]-free plain
    /// `OutOfRange` signals (empty or inverted intervals).
    pub fn new(
        v_min: f64,
        v_max: f64,
        c_min_ff: f64,
        c_max_ff: f64,
        nominal_vdd: f64,
    ) -> Result<ParameterSpace, DelayError> {
        let phi_v = VoltageNormalizer::new(v_min, v_max).map_err(|_| DelayError::OutOfRange {
            voltage: v_min,
            load_ff: c_min_ff,
        })?;
        let phi_c = CapNormalizer::new(c_min_ff, c_max_ff).map_err(|_| DelayError::OutOfRange {
            voltage: v_min,
            load_ff: c_min_ff,
        })?;
        if !phi_v.contains(nominal_vdd) {
            return Err(DelayError::OutOfRange {
                voltage: nominal_vdd,
                load_ff: c_min_ff,
            });
        }
        Ok(ParameterSpace {
            phi_v,
            phi_c,
            nominal_vdd,
        })
    }

    /// The paper's space: `[0.55, 1.1] V × [0.5, 128] fF`, nominal 0.8 V.
    pub fn paper() -> ParameterSpace {
        ParameterSpace::new(0.55, 1.1, 0.5, 128.0, 0.8).expect("paper space is valid")
    }

    /// The nominal supply voltage.
    pub fn nominal_vdd(&self) -> f64 {
        self.nominal_vdd
    }

    /// The nominal operating point for a given load.
    pub fn nominal_point(&self, load_ff: f64) -> OperatingPoint {
        OperatingPoint::new(self.nominal_vdd, load_ff)
    }

    /// The voltage interval `[V_min, V_max]`.
    pub fn voltage_range(&self) -> (f64, f64) {
        (self.phi_v.min(), self.phi_v.max())
    }

    /// The load interval `[C_min, C_max]`, fF.
    pub fn load_range(&self) -> (f64, f64) {
        (self.phi_c.min(), self.phi_c.max())
    }

    /// Whether `op` is inside the space.
    pub fn contains(&self, op: OperatingPoint) -> bool {
        self.phi_v.contains(op.voltage) && self.phi_c.contains(op.load_ff)
    }

    /// Normalizes an operating point to the unit square.
    ///
    /// # Errors
    ///
    /// Returns [`DelayError::OutOfRange`] for points outside the space —
    /// polynomials extrapolate badly, so out-of-range evaluation is a
    /// caller bug, not a soft clamp.
    pub fn normalize(&self, op: OperatingPoint) -> Result<NormalizedPoint, DelayError> {
        if !self.contains(op) {
            return Err(DelayError::OutOfRange {
                voltage: op.voltage,
                load_ff: op.load_ff,
            });
        }
        Ok(NormalizedPoint {
            v: self.phi_v.apply(op.voltage),
            c: self.phi_c.apply(op.load_ff),
        })
    }

    /// Normalizes with clamping to the space boundary (used for loads that
    /// fall slightly outside the characterized interval, e.g. unloaded
    /// dangling nets).
    pub fn normalize_clamped(&self, op: OperatingPoint) -> NormalizedPoint {
        let (v_min, v_max) = self.voltage_range();
        let (c_min, c_max) = self.load_range();
        NormalizedPoint {
            v: self.phi_v.apply(op.voltage.clamp(v_min, v_max)),
            c: self.phi_c.apply(op.load_ff.clamp(c_min, c_max)),
        }
    }

    /// Lane-batched [`ParameterSpace::normalize_clamped`]: maps every
    /// operating point of a lane group to the unit square in one pass, for
    /// engines that assign per-lane operating points up front and then run
    /// pure-Horner kernels over the normalized coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `ops.len() != out.len()`.
    pub fn normalize_clamped_lanes(&self, ops: &[OperatingPoint], out: &mut [NormalizedPoint]) {
        assert_eq!(ops.len(), out.len(), "lane output length mismatch");
        for (op, o) in ops.iter().zip(out.iter_mut()) {
            *o = self.normalize_clamped(*op);
        }
    }

    /// The voltage normalizer `φ_V`.
    pub fn phi_v(&self) -> &VoltageNormalizer {
        &self.phi_v
    }

    /// The capacitance normalizer `φ_C`.
    pub fn phi_c(&self) -> &CapNormalizer {
        &self.phi_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_space() {
        let s = ParameterSpace::paper();
        assert_eq!(s.nominal_vdd(), 0.8);
        assert_eq!(s.voltage_range(), (0.55, 1.1));
        assert_eq!(s.load_range(), (0.5, 128.0));
        assert!(s.contains(OperatingPoint::new(0.8, 4.0)));
        assert!(!s.contains(OperatingPoint::new(1.2, 4.0)));
        assert!(!s.contains(OperatingPoint::new(0.8, 0.2)));
    }

    #[test]
    fn nominal_must_be_inside() {
        assert!(matches!(
            ParameterSpace::new(0.55, 1.1, 0.5, 128.0, 1.2),
            Err(DelayError::OutOfRange { .. })
        ));
        assert!(ParameterSpace::new(0.55, 1.1, 0.5, 128.0, 0.55).is_ok());
    }

    #[test]
    fn bad_intervals_rejected() {
        assert!(ParameterSpace::new(1.1, 0.55, 0.5, 128.0, 0.8).is_err());
        assert!(ParameterSpace::new(0.55, 1.1, -1.0, 128.0, 0.8).is_err());
    }

    #[test]
    fn normalize_maps_corners_to_unit_square() {
        let s = ParameterSpace::paper();
        let lo = s.normalize(OperatingPoint::new(0.55, 0.5)).unwrap();
        assert!((lo.v).abs() < 1e-12 && (lo.c).abs() < 1e-12);
        let hi = s.normalize(OperatingPoint::new(1.1, 128.0)).unwrap();
        assert!((hi.v - 1.0).abs() < 1e-9 && (hi.c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_rejects_outside() {
        let s = ParameterSpace::paper();
        assert!(s.normalize(OperatingPoint::new(0.5, 1.0)).is_err());
        assert!(s.normalize(OperatingPoint::new(0.8, 200.0)).is_err());
    }

    #[test]
    fn clamped_normalization() {
        let s = ParameterSpace::paper();
        let p = s.normalize_clamped(OperatingPoint::new(0.8, 0.01));
        assert_eq!(p.c, 0.0);
        let p = s.normalize_clamped(OperatingPoint::new(2.0, 300.0));
        assert!((p.v - 1.0).abs() < 1e-12);
        assert!((p.c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lane_normalization_matches_scalar() {
        let s = ParameterSpace::paper();
        let ops = [
            OperatingPoint::new(0.8, 4.0),
            OperatingPoint::new(0.55, 0.01), // clamps load
            OperatingPoint::new(2.0, 300.0), // clamps both
        ];
        let mut out = [NormalizedPoint { v: 0.0, c: 0.0 }; 3];
        s.normalize_clamped_lanes(&ops, &mut out);
        for (op, got) in ops.iter().zip(&out) {
            let want = s.normalize_clamped(*op);
            assert_eq!(got.v.to_bits(), want.v.to_bits());
            assert_eq!(got.c.to_bits(), want.c.to_bits());
        }
    }

    #[test]
    fn nominal_point_uses_given_load() {
        let s = ParameterSpace::paper();
        let p = s.nominal_point(7.0);
        assert_eq!(p.voltage, 0.8);
        assert_eq!(p.load_ff, 7.0);
    }
}
