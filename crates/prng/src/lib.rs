//! Tiny deterministic pseudo-random number generation.
//!
//! A minimal, dependency-free replacement for the small slice of the
//! `rand` crate API this workspace uses ([`Rng`], [`SeedableRng`],
//! [`SmallRng`]). Keeping it in-tree makes the workspace build
//! hermetically with no registry access, and the generators are fully
//! deterministic per seed — a property the pattern generators and
//! benchmark circuits rely on for reproducibility.
//!
//! The core generator is xoshiro256++ seeded through SplitMix64, the
//! same construction `rand`'s `SmallRng` uses on 64-bit targets: fast,
//! tiny state, and more than good enough for test stimuli and synthetic
//! netlists (this is not a cryptographic generator).
//!
//! # Example
//!
//! ```
//! use avfs_prng::{Rng, SeedableRng, SmallRng};
//!
//! let mut rng = SmallRng::seed_from_u64(42);
//! let word: u64 = rng.gen();
//! let unit: f64 = rng.gen(); // uniform in [0, 1)
//! let die = rng.gen_range(1..7usize);
//! assert!((0.0..1.0).contains(&unit));
//! assert!((1..7).contains(&die));
//! let mut again = SmallRng::seed_from_u64(42);
//! assert_eq!(word, again.gen::<u64>());
//! ```

#![forbid(unsafe_code)]

use std::ops::Range;

/// A source of pseudo-random numbers (the subset of `rand::Rng` the
/// workspace uses).
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of a primitive type (`u64`, `u32`,
    /// `u8`, `usize`, `bool`, or `f64` in `[0, 1)`).
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Construction of a generator from a 64-bit seed (the subset of
/// `rand::SeedableRng` the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an [`Rng`].
pub trait Sample: Sized {
    /// Draws one uniform value.
    fn sample(rng: &mut impl Rng) -> Self;
}

impl Sample for u64 {
    fn sample(rng: &mut impl Rng) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample(rng: &mut impl Rng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for u8 {
    fn sample(rng: &mut impl Rng) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Sample for usize {
    fn sample(rng: &mut impl Rng) -> usize {
        rng.next_u64() as usize
    }
}

impl Sample for bool {
    fn sample(rng: &mut impl Rng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut impl Rng) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleRange: Sized {
    /// Draws a uniform value from the half-open `range`.
    fn sample_range(rng: &mut impl Rng, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range(rng: &mut impl Rng, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range called with empty range");
                let span = (range.end - range.start) as u64;
                // Modulo bias is < 2^-32 for the spans used here (test
                // stimuli, netlist shapes) — irrelevant for simulation.
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// A small, fast generator: xoshiro256++ with SplitMix64 seeding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> SmallRng {
        // Expand the seed with SplitMix64 so nearby seeds give unrelated
        // streams (the standard xoshiro seeding procedure).
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..500 {
            let v = rng.gen_range(0..6usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
        for _ in 0..100 {
            assert!((5..7u8).contains(&rng.gen_range(5..7u8)));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = rng.gen_range(3..3usize);
    }

    #[test]
    fn bool_and_bytes_plausibly_uniform() {
        let mut rng = SmallRng::seed_from_u64(11);
        let trues = (0..4000).filter(|_| rng.gen::<bool>()).count();
        assert!((1600..2400).contains(&trues), "bool bias: {trues}/4000");
        let mean: f64 = (0..4000).map(|_| rng.gen::<u8>() as f64).sum::<f64>() / 4000.0;
        assert!((107.0..147.0).contains(&mean), "u8 mean {mean}");
    }
}
