//! Integration: the `avfs-sta` static-timing oracle cross-validating
//! the time simulator through the public facade (DESIGN.md §16).
//!
//! Two properties anchor the cross-check:
//!
//! 1. **Bound** — on any netlist, at any characterized supply, the STA
//!    latest arrival dominates every simulated latest output transition
//!    (both engines fold `t + delay(pin, edge)` over one shared delay
//!    matrix, and STA maximizes over all paths).
//! 2. **Agreement** — walking the simulator's realized critical event
//!    chain backwards under the STA arc delays reconstructs a real path
//!    whose STA fold reproduces the simulated arrival bitwise, even on
//!    the false-path-heavy paper profiles.

use avfs::atpg::PatternSet;
use avfs::circuits::{random_netlist, CircuitProfile, GeneratorConfig};
use avfs::delay::characterize::{
    characterize_library, CharacterizationConfig, CharacterizedLibrary,
};
use avfs::delay::OperatingPoint;
use avfs::netlist::{CellLibrary, Netlist, NodeId};
use avfs::sim::sta::{crosscheck, scaled_graph, CrossCheckOptions};
use avfs::sim::{slots, CompiledNetlist, SimOptions, SlotResult};
use avfs::spice::Technology;
use avfs::sta::TimingGraph;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// One characterization shared by every property case — the fitted
/// polynomial kernels are deterministic, so caching them changes
/// nothing but the runtime.
fn shared_characterization() -> &'static CharacterizedLibrary {
    static CHARS: OnceLock<CharacterizedLibrary> = OnceLock::new();
    CHARS.get_or_init(|| {
        let library = CellLibrary::nangate15_like();
        characterize_library(
            &library,
            &Technology::nm15(),
            &CharacterizationConfig::fast(),
            None,
        )
        .expect("characterization succeeds")
    })
}

/// Compiles a netlist against the shared characterization.
fn compile(netlist: Netlist) -> Arc<CompiledNetlist> {
    let chars = shared_characterization();
    let netlist = Arc::new(netlist);
    let annotation = Arc::new(chars.annotate(&netlist).expect("annotation covers netlist"));
    Arc::new(
        CompiledNetlist::compile(netlist, annotation, Arc::new(chars.model().clone()))
            .expect("netlist compiles"),
    )
}

proptest! {
    /// The oracle bound on randomized netlists: across shapes, seeds,
    /// and the characterized voltage range, no simulated arrival ever
    /// exceeds the STA latest arrival, and the cross-check emits zero
    /// deny findings.
    #[test]
    fn sta_bound_dominates_randomized_netlists(
        seed in 0u64..1_000_000,
        nodes in 40usize..160,
        depth in 4usize..12,
    ) {
        let config = GeneratorConfig {
            nodes,
            inputs: 10,
            outputs: 8,
            depth,
            two_input_fraction: 0.7,
        };
        let library = CellLibrary::nangate15_like();
        let netlist = random_netlist(&format!("prop-{seed}"), &config, &library, seed)
            .expect("random netlist builds");
        let compiled = compile(netlist);
        let patterns = PatternSet::lfsr(compiled.netlist().inputs().len(), 4, seed | 1);
        let run = compiled
            .launch(
                &patterns,
                &slots::cross(patterns.len(), &[0.55, 0.8, 1.1]),
                &SimOptions::default(),
            )
            .expect("launch succeeds");
        let check = crosscheck(&compiled, &run, "prop", &CrossCheckOptions::default())
            .expect("sweep voltages are modelable");
        prop_assert_eq!(check.deny_count(), 0, "findings: {:?}", check.findings);
        for row in &check.rows {
            if let Some(margin) = row.margin_ps {
                prop_assert!(
                    margin >= -check.epsilon_ps,
                    "STA bound breached at {} V: margin {margin} ps",
                    row.voltage
                );
            }
        }
    }
}

/// Walks the realized critical event chain of `slot` backwards from its
/// latest-toggling output: at every gate the last transition must equal
/// a fanin transition plus the STA arc delay for the realized output
/// edge, bitwise. Returns the simulated arrival and the STA fold along
/// the reconstructed chain; `None` if no output toggled or some arc is
/// priced differently by the two engines (which the caller must treat
/// as a failure).
fn realized_chain_fold(
    netlist: &Netlist,
    graph: &TimingGraph<'_>,
    slot: &SlotResult,
) -> Option<(f64, f64)> {
    let t_end = slot.latest_output_transition_ps?;
    let waves = slot.waveforms.as_ref().expect("run keeps waveforms");
    let po = netlist.outputs().iter().copied().max_by(|&a, &b| {
        let last = |id: NodeId| {
            waves[id.index()]
                .last_transition()
                .unwrap_or(f64::NEG_INFINITY)
        };
        last(a).total_cmp(&last(b))
    })?;

    let mut chain = Vec::new();
    let mut edges = Vec::new();
    let mut cur = po;
    let mut t = t_end;
    let mut edge = waves[po.index()].value_at(t);
    loop {
        chain.push(cur);
        edges.push(edge);
        let node = netlist.node(cur);
        if node.fanin().is_empty() {
            break;
        }
        let pins = graph.node_delays(cur);
        let mut matched = None;
        'pins: for (pin, &f) in node.fanin().iter().enumerate() {
            let d = pins[pin].for_output(edge);
            for (tf, vf) in waves[f.index()].iter() {
                if tf + d == t {
                    matched = Some((f, tf, vf));
                    break 'pins;
                }
            }
        }
        let (f, tf, vf) = matched?;
        cur = f;
        t = tf;
        edge = vf;
    }
    chain.reverse();
    edges.reverse();
    let fold = graph
        .path_arrival_with_edges(&chain, &edges, t)
        .expect("the reconstructed chain is a fanin chain by construction");
    Some((t_end, fold))
}

/// The acceptance agreement on p951k: the simulated critical-path
/// arrival is reproduced exactly by the STA fold along the realized
/// event chain. Forward sensitization cannot carry this circuit — its
/// long paths are tens of levels deep and random fill never sensitizes
/// them — so the backward walk is the witness (DESIGN.md §16).
#[test]
fn p951k_critical_path_agrees_with_sta_fold() {
    let library = CellLibrary::nangate15_like();
    let profile = CircuitProfile::find("p951k").expect("profile exists");
    let netlist = profile
        .synthesize(0.002, &library)
        .expect("synthesis succeeds");
    let compiled = compile(netlist);
    let options = CrossCheckOptions::default();
    let voltage = 0.8;
    let graph = scaled_graph(&compiled, voltage).expect("nominal supply is modelable");
    let patterns = PatternSet::lfsr(compiled.netlist().inputs().len(), 8, 0x5EED);
    let run = compiled
        .launch(
            &patterns,
            &slots::at_voltage(patterns.len(), voltage),
            &SimOptions {
                keep_waveforms: true,
                ..SimOptions::default()
            },
        )
        .expect("launch succeeds");

    // The bound must hold on the paper profile too.
    let check = crosscheck(&compiled, &run, "p951k", &options).expect("modelable");
    assert_eq!(check.deny_count(), 0, "findings: {:?}", check.findings);

    // The worst slot of the run realizes the critical arrival; its
    // event chain must price bitwise under the STA arc delays.
    let slot = run
        .slots
        .iter()
        .filter(|s| s.latest_output_transition_ps.is_some())
        .max_by(|a, b| {
            a.latest_output_transition_ps
                .unwrap()
                .total_cmp(&b.latest_output_transition_ps.unwrap())
        })
        .expect("some output toggles under LFSR stimuli");
    let (sim, fold) = realized_chain_fold(compiled.netlist(), &graph, slot)
        .expect("every realized arc prices under the shared delay matrix");
    assert!(
        (sim - fold).abs() <= options.epsilon_ps,
        "sim {sim} ps vs STA fold {fold} ps exceeds ε = {} ps",
        options.epsilon_ps
    );

    // And the fold is itself bounded by the global STA latest arrival.
    let report = compiled
        .sta(&OperatingPoint::new(voltage, 0.0))
        .expect("modelable");
    assert!(fold <= report.latest_arrival_ps + options.epsilon_ps);
}

/// `CompiledNetlist::sta` and `scaled_graph` are two views of one
/// oracle: the method's report must equal the graph's report at the
/// same operating point.
#[test]
fn compiled_sta_method_matches_scaled_graph_report() {
    let library = CellLibrary::nangate15_like();
    let netlist = avfs::circuits::c17(&library).expect("c17 builds");
    let compiled = compile(netlist);
    for voltage in [0.55, 0.8, 1.1] {
        let graph = scaled_graph(&compiled, voltage).expect("modelable");
        let from_graph = graph.report(0.0);
        let from_method = compiled
            .sta(&OperatingPoint::new(voltage, 0.0))
            .expect("modelable");
        assert_eq!(from_method, from_graph, "views diverge at {voltage} V");
    }
}
