//! Integration: netlist / SDF / SPEF round trips feeding the simulator.

use avfs::atpg::PatternSet;
use avfs::circuits::ripple_carry_adder;
use avfs::delay::characterize::{characterize_library, CharacterizationConfig};
use avfs::delay::StaticModel;
use avfs::netlist::{bench, verilog, CellLibrary, NodeKind};
use avfs::sdf::{sdf, spef};
use avfs::sim::{SimOptions, TimeSimulator};
use avfs::spice::Technology;
use std::collections::BTreeSet;
use std::sync::Arc;

#[test]
fn verilog_roundtrip_preserves_simulation() {
    let library = CellLibrary::nangate15_like();
    let original = Arc::new(ripple_carry_adder(6, &library).expect("adder"));
    let text = verilog::write_verilog(&original);
    let reparsed = Arc::new(verilog::parse_verilog(&text, &library).expect("reparses"));
    assert_eq!(original.num_gates(), reparsed.num_gates());
    assert_eq!(original.inputs().len(), reparsed.inputs().len());
    assert_eq!(original.outputs().len(), reparsed.outputs().len());

    // Same logic: zero-delay responses agree on random vectors.
    let levels_a = avfs::netlist::Levelization::of(&original).expect("acyclic");
    let levels_b = avfs::netlist::Levelization::of(&reparsed).expect("acyclic");
    let patterns = PatternSet::random(original.inputs().len(), 16, 5);
    for pair in &patterns {
        let va = avfs::atpg::zero_delay_values(&original, &levels_a, &pair.capture);
        let vb = avfs::atpg::zero_delay_values(&reparsed, &levels_b, &pair.capture);
        let ra: Vec<bool> = original
            .outputs()
            .iter()
            .map(|&po| va[po.index()])
            .collect();
        let rb: Vec<bool> = reparsed
            .outputs()
            .iter()
            .map(|&po| vb[po.index()])
            .collect();
        assert_eq!(ra, rb);
    }
}

#[test]
fn bench_roundtrip_preserves_structure() {
    let library = CellLibrary::nangate15_like();
    let c17 = avfs::circuits::c17(&library).expect("c17 parses");
    let text = bench::write_bench(&c17);
    let again = bench::parse_bench("c17b", &text, &library, &bench::BenchOptions::default())
        .expect("reparses");
    assert_eq!(c17.num_nodes(), again.num_nodes());
    assert_eq!(c17.num_gates(), again.num_gates());
}

#[test]
fn sdf_spef_roundtrip_preserves_timing() {
    let library = CellLibrary::nangate15_like();
    let netlist = Arc::new(ripple_carry_adder(6, &library).expect("adder"));
    let used: Vec<_> = {
        let mut set = BTreeSet::new();
        for (_, node) in netlist.iter() {
            if let NodeKind::Gate(cell) = node.kind() {
                set.insert(cell);
            }
        }
        set.into_iter().collect()
    };
    let chars = characterize_library(
        &library,
        &Technology::nm15(),
        &CharacterizationConfig::fast(),
        Some(&used),
    )
    .expect("characterizes");
    let annotation = Arc::new(chars.annotate(&netlist).expect("annotates"));

    let sdf_text = sdf::write_sdf(&netlist, &annotation);
    let spef_text = spef::write_spef(&netlist, &annotation);
    let mut parsed = sdf::parse_sdf(&netlist, &sdf_text).expect("sdf parses");
    spef::apply_spef(
        &netlist,
        &mut parsed,
        &spef::parse_spef(&spef_text).expect("spef parses"),
    )
    .expect("loads apply");

    // Every pin delay and every load survives the text round trip.
    for (id, node) in netlist.iter() {
        if matches!(node.kind(), NodeKind::Gate(_)) {
            for pin in 0..node.fanin().len() {
                let a = annotation.pin_delays(id, pin);
                let b = parsed.pin_delays(id, pin);
                assert!((a.rise - b.rise).abs() < 1e-5, "{} pin {pin}", node.name());
                assert!((a.fall - b.fall).abs() < 1e-5, "{} pin {pin}", node.name());
            }
        }
        if !node.fanout().is_empty() {
            assert!((annotation.load_ff(id) - parsed.load_ff(id)).abs() < 1e-5);
        }
    }

    // And the simulation built on the parsed annotation is identical.
    let model = Arc::new(StaticModel::new(*chars.space()));
    let sim_a = TimeSimulator::new(Arc::clone(&netlist), annotation, Arc::clone(&model) as _)
        .expect("builds");
    let sim_b =
        TimeSimulator::new(Arc::clone(&netlist), Arc::new(parsed), model as _).expect("builds");
    let patterns = PatternSet::lfsr(netlist.inputs().len(), 8, 6);
    let opts = SimOptions::default();
    let a = sim_a.run_at(&patterns, 0.8, &opts).expect("runs");
    let b = sim_b.run_at(&patterns, 0.8, &opts).expect("runs");
    for (x, y) in a.slots.iter().zip(&b.slots) {
        assert_eq!(x.responses, y.responses);
        match (x.latest_output_transition_ps, y.latest_output_transition_ps) {
            (Some(ta), Some(tb)) => assert!((ta - tb).abs() < 1e-6),
            (a, b) => assert_eq!(a, b),
        }
    }
}
