//! Integration checks of the voltage-dependent timing behaviour — the
//! properties behind Table II.

use avfs::atpg::PatternSet;
use avfs::circuits::{random_netlist, ripple_carry_adder, GeneratorConfig};
use avfs::delay::characterize::{characterize_library, CharacterizationConfig};
use avfs::delay::{AlphaPowerModel, StaticModel};
use avfs::netlist::{CellLibrary, Netlist, NodeKind};
use avfs::sim::{SimOptions, TimeSimulator};
use avfs::spice::Technology;
use std::collections::BTreeSet;
use std::sync::Arc;

const SWEEP: [f64; 6] = [0.55, 0.6, 0.7, 0.8, 0.9, 1.1];

fn characterized_sim(netlist: &Arc<Netlist>, library: &Arc<CellLibrary>) -> TimeSimulator {
    let used: Vec<_> = {
        let mut set = BTreeSet::new();
        for (_, node) in netlist.iter() {
            if let NodeKind::Gate(cell) = node.kind() {
                set.insert(cell);
            }
        }
        set.into_iter().collect()
    };
    let chars = characterize_library(
        library,
        &Technology::nm15(),
        &CharacterizationConfig::fast(),
        Some(&used),
    )
    .expect("characterization succeeds");
    TimeSimulator::from_characterization(Arc::clone(netlist), &chars).expect("builds")
}

#[test]
fn arrival_times_fall_monotonically_with_voltage() {
    let library = CellLibrary::nangate15_like();
    for netlist in [
        Arc::new(ripple_carry_adder(8, &library).expect("adder")),
        Arc::new(
            random_netlist(
                "mono",
                &GeneratorConfig {
                    nodes: 400,
                    inputs: 24,
                    outputs: 24,
                    depth: 16,
                    two_input_fraction: 0.7,
                },
                &library,
                5,
            )
            .expect("generates"),
        ),
    ] {
        let sim = characterized_sim(&netlist, &library);
        let patterns = PatternSet::lfsr(netlist.inputs().len(), 16, 2);
        let run = sim
            .voltage_sweep(&patterns, &SWEEP, &SimOptions::default())
            .expect("sweep runs");
        let arrivals: Vec<f64> = SWEEP
            .iter()
            .map(|&v| run.latest_arrival_at(v).expect("outputs toggle"))
            .collect();
        for w in arrivals.windows(2) {
            assert!(
                w[0] > w[1],
                "{}: arrivals must fall with voltage: {arrivals:?}",
                netlist.name()
            );
        }
        // Non-linear: the low-voltage end is much more sensitive (paper
        // Table II shape). Compare slopes of the first and last segment.
        let low_slope = (arrivals[0] - arrivals[1]) / (SWEEP[1] - SWEEP[0]);
        let high_slope = (arrivals[4] - arrivals[5]) / (SWEEP[5] - SWEEP[4]);
        assert!(
            low_slope > 1.5 * high_slope,
            "{}: expected super-linear low-voltage sensitivity ({low_slope} vs {high_slope})",
            netlist.name()
        );
    }
}

#[test]
fn nominal_parametric_deviation_is_small() {
    // Table II: the parametric simulation at the nominal voltage deviates
    // from the static-delay simulation only by the kernel's fit error.
    let library = CellLibrary::nangate15_like();
    let netlist = Arc::new(ripple_carry_adder(8, &library).expect("adder"));
    let sim = characterized_sim(&netlist, &library);
    let static_sim = TimeSimulator::new(
        Arc::clone(&netlist),
        Arc::clone(sim.annotation()),
        Arc::new(StaticModel::new(*sim.engine().model().space())),
    )
    .expect("builds");
    let patterns = PatternSet::lfsr(netlist.inputs().len(), 16, 8);
    let opts = SimOptions::default();
    let a = sim.run_at(&patterns, 0.8, &opts).expect("runs");
    let b = static_sim.run_at(&patterns, 0.8, &opts).expect("runs");
    let (ta, tb) = (
        a.latest_arrival_at(0.8).expect("toggles"),
        b.latest_arrival_at(0.8).expect("toggles"),
    );
    let deviation = (ta - tb).abs() / tb;
    assert!(deviation < 0.02, "nominal deviation {deviation} too large");
    // Responses are identical — delays shift, logic does not.
    for (x, y) in a.slots.iter().zip(&b.slots) {
        assert_eq!(x.responses, y.responses);
    }
}

#[test]
fn alpha_power_baseline_tracks_polynomial_roughly() {
    // The analytical α-power model (load-blind) should agree with the
    // learned polynomial on the big picture while differing in detail —
    // the motivation for learning the surface instead of using Eq. 1.
    let library = CellLibrary::nangate15_like();
    let netlist = Arc::new(ripple_carry_adder(8, &library).expect("adder"));
    let sim = characterized_sim(&netlist, &library);
    let tech = Technology::nm15();
    let alpha_sim = TimeSimulator::new(
        Arc::clone(&netlist),
        Arc::clone(sim.annotation()),
        Arc::new(AlphaPowerModel::new(
            tech.vth_n,
            tech.alpha,
            *sim.engine().model().space(),
        )),
    )
    .expect("builds");
    let patterns = PatternSet::lfsr(netlist.inputs().len(), 8, 13);
    let opts = SimOptions::default();
    for &v in &[0.55, 0.8, 1.1] {
        let poly = sim
            .run_at(&patterns, v, &opts)
            .expect("runs")
            .latest_arrival_at(v)
            .expect("toggles");
        let alpha = alpha_sim
            .run_at(&patterns, v, &opts)
            .expect("runs")
            .latest_arrival_at(v)
            .expect("toggles");
        let ratio = poly / alpha;
        assert!(
            (0.7..1.4).contains(&ratio),
            "at {v} V: polynomial {poly} vs alpha-power {alpha}"
        );
    }
}

#[test]
fn energy_grows_with_voltage_while_latency_falls() {
    // The AVFS trade-off in one assertion: raising the supply buys
    // latency and costs quadratic energy.
    let library = CellLibrary::nangate15_like();
    let netlist = Arc::new(ripple_carry_adder(8, &library).expect("adder"));
    let sim = characterized_sim(&netlist, &library);
    let patterns = PatternSet::lfsr(netlist.inputs().len(), 8, 21);
    let run = sim
        .voltage_sweep(
            &patterns,
            &[0.6, 0.8, 1.0],
            &SimOptions {
                keep_waveforms: true,
                ..SimOptions::default()
            },
        )
        .expect("sweep runs");
    let energies = avfs::sim::energy_by_voltage(&netlist, sim.annotation(), &run);
    assert_eq!(energies.len(), 3);
    for w in energies.windows(2) {
        let ((v0, e0), (v1, e1)) = (w[0], w[1]);
        assert!(v0 < v1);
        assert!(
            e1.total_fj > e0.total_fj,
            "energy must grow with voltage: {e0:?} vs {e1:?}"
        );
        // More than linear (V² on equal-toggle counts; toggles may shift
        // a little as glitches appear/vanish).
        assert!(e1.total_fj / e0.total_fj > v1 / v0);
    }
    let t_low = run.latest_arrival_at(0.6).expect("toggles");
    let t_high = run.latest_arrival_at(1.0).expect("toggles");
    assert!(t_low > t_high);
}

#[test]
fn process_variation_shifts_arrivals_modestly() {
    use avfs::delay::variation::{apply_variation, VariationConfig};
    let library = CellLibrary::nangate15_like();
    let netlist = Arc::new(ripple_carry_adder(8, &library).expect("adder"));
    let sim = characterized_sim(&netlist, &library);
    let varied = Arc::new(apply_variation(
        sim.annotation(),
        &VariationConfig::sigma5(99),
    ));
    let varied_sim = TimeSimulator::new(
        Arc::clone(&netlist),
        varied,
        Arc::new(StaticModel::new(*sim.engine().model().space())),
    )
    .expect("builds");
    let base_sim = TimeSimulator::new(
        Arc::clone(&netlist),
        Arc::clone(sim.annotation()),
        Arc::new(StaticModel::new(*sim.engine().model().space())),
    )
    .expect("builds");
    let patterns = PatternSet::lfsr(netlist.inputs().len(), 16, 2);
    let opts = SimOptions::default();
    let a = base_sim.run_at(&patterns, 0.8, &opts).expect("runs");
    let b = varied_sim.run_at(&patterns, 0.8, &opts).expect("runs");
    let (ta, tb) = (
        a.latest_arrival_at(0.8).expect("toggles"),
        b.latest_arrival_at(0.8).expect("toggles"),
    );
    let shift = (tb - ta).abs() / ta;
    assert!(shift > 0.0, "variation must move the arrival");
    assert!(
        shift < 0.25,
        "5%-sigma variation shifted arrival by {shift}"
    );
    // Logic is unaffected.
    for (x, y) in a.slots.iter().zip(&b.slots) {
        assert_eq!(x.responses, y.responses);
    }
}

#[test]
fn glitch_activity_is_observed() {
    // Glitch accuracy is the point of time simulation: a reconvergent
    // random circuit must show glitch transitions beyond the functional
    // ones under realistic delays.
    let library = CellLibrary::nangate15_like();
    let netlist = Arc::new(
        random_netlist(
            "glitchy",
            &GeneratorConfig {
                nodes: 500,
                inputs: 24,
                outputs: 24,
                depth: 18,
                two_input_fraction: 0.75,
            },
            &library,
            17,
        )
        .expect("generates"),
    );
    let sim = characterized_sim(&netlist, &library);
    let patterns = PatternSet::lfsr(netlist.inputs().len(), 16, 3);
    let run = sim
        .run_at(&patterns, 0.8, &SimOptions::default())
        .expect("runs");
    let glitches: usize = run
        .slots
        .iter()
        .map(|s| s.activity.total_glitch_transitions)
        .sum();
    assert!(
        glitches > 0,
        "expected glitch activity in a reconvergent circuit"
    );
}
