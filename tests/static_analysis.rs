//! Integration: the `avfs-check` static-analysis tiers wired through the
//! public facade — strict run validation, the `avfs-check/1` report
//! round-trip, and the exhaustive protocol interleaving audit.

use avfs::atpg::PatternSet;
use avfs::check::interleave::{explore, StepResult, ThreadModel};
use avfs::check::{InterleaveError, Report, Severity, Subject};
use avfs::netlist::CellLibrary;
use avfs::sim::{slots, SimError, SimOptions, TimeSimulator, ValidationMode};
use std::sync::Arc;

fn simulator() -> TimeSimulator {
    let library = CellLibrary::nangate15_like();
    let netlist = Arc::new(avfs::circuits::c17(&library).expect("c17 builds"));
    let chars = avfs::delay::characterize::characterize_library(
        &library,
        &avfs::spice::Technology::nm15(),
        &avfs::delay::characterize::CharacterizationConfig::fast(),
        None,
    )
    .expect("characterization");
    TimeSimulator::from_characterization(netlist, &chars).expect("simulator binds")
}

#[test]
fn warn_mode_records_out_of_domain_slots() {
    let sim = simulator();
    let patterns = PatternSet::lfsr(sim.netlist().inputs().len(), 4, 9);
    // 0.3 V is far below the characterized [0.55, 1.1] V window; the
    // engine used to clamp it silently. Warn (the default) still clamps
    // but records the finding.
    let run = sim
        .engine()
        .run(
            &patterns,
            &slots::cross(1, &[0.3, 0.8]),
            &SimOptions {
                threads: 1,
                ..SimOptions::default()
            },
        )
        .expect("warn mode continues");
    let findings = &run.diagnostics.validation_findings;
    assert!(
        findings
            .iter()
            .any(|f| f.contains("AVC-D005") && f.contains("slot 0")),
        "{findings:?}"
    );
    assert!(
        !findings.iter().any(|f| f.contains("slot 1")),
        "0.8 V is in-domain: {findings:?}"
    );
}

#[test]
fn deny_mode_refuses_and_off_mode_ignores() {
    let sim = simulator();
    let patterns = PatternSet::lfsr(sim.netlist().inputs().len(), 2, 9);
    let bad = slots::at_voltage(patterns.len(), 1.4); // above v_max
    let denied = sim.engine().run(
        &patterns,
        &bad,
        &SimOptions {
            threads: 1,
            strict_validation: ValidationMode::Deny,
            ..SimOptions::default()
        },
    );
    let findings = match denied {
        Err(SimError::Validation { findings }) => findings,
        other => panic!("expected SimError::Validation, got {other:?}"),
    };
    assert!(
        findings.iter().any(|f| f.contains("AVC-D005")),
        "{findings:?}"
    );
    // Off mode simulates the same launch and records nothing.
    let run = sim
        .engine()
        .run(
            &patterns,
            &bad,
            &SimOptions {
                threads: 1,
                strict_validation: ValidationMode::Off,
                ..SimOptions::default()
            },
        )
        .expect("off mode never validates");
    assert!(run.diagnostics.validation_findings.is_empty());
}

#[test]
fn report_round_trips_through_the_facade() {
    let library = CellLibrary::nangate15_like();
    let c17 = avfs::circuits::c17(&library).expect("c17 builds");
    let mut report = Report::new();
    report.push(Subject::new(
        "c17",
        "netlist",
        avfs::check::netlist::lint_netlist(&c17),
    ));
    let (runs, findings) = avfs::check::protocols::audit_concurrency();
    report.schedules_explored = runs
        .iter()
        .filter_map(|r| r.result.as_ref().ok())
        .map(|e| e.schedules)
        .sum();
    report.push(Subject::new("engine-protocols", "concurrency", findings));
    assert!(report.passes_ci(), "in-tree subjects carry no deny finding");
    assert!(report.schedules_explored > 0);
    let text = report.to_json().to_string_pretty();
    let back = Report::validate(&text).expect("document validates");
    assert_eq!(back, report);
    assert_eq!(back.count(Severity::Deny), 0);
}

#[test]
fn protocol_audit_is_exhaustive_and_clean() {
    // Regression for the engine's two lock-free protocols: the arena's
    // claim-bit single-winner guarantee and the pool's epoch barrier,
    // model-checked over every interleaving.
    let claim = avfs::check::protocols::check_claim_protocol(3, 0).expect("single winner holds");
    // Exhaustiveness shows as a stable, exact schedule count (the losers
    // of the claim race finish right after their fetch_or, so schedules
    // are shorter than writers × steps).
    assert_eq!(claim.schedules, 60, "{claim:?}");
    let epoch = avfs::check::protocols::check_epoch_protocol(2, 2).expect("epoch barrier holds");
    assert!(epoch.schedules > 10, "{epoch:?}");
}

/// Two threads doing a non-atomic read-modify-write on a shared counter:
/// the canonical lost update the interleaving checker must catch.
#[derive(Clone)]
struct LostUpdate {
    loaded: Option<u32>,
}

impl ThreadModel<u32> for LostUpdate {
    fn step(&mut self, shared: &mut u32) -> StepResult {
        match self.loaded.take() {
            None => {
                self.loaded = Some(*shared);
                StepResult::Ran
            }
            Some(v) => {
                *shared = v + 1;
                StepResult::Finished
            }
        }
    }
}

#[test]
fn interleaving_checker_finds_lost_updates() {
    let threads = vec![LostUpdate { loaded: None }, LostUpdate { loaded: None }];
    let err = explore(&0u32, &threads, &|_| Ok(()), &|shared| {
        if *shared == 2 {
            Ok(())
        } else {
            Err(format!("lost update: counter is {shared}, not 2"))
        }
    })
    .expect_err("a torn increment must be caught");
    match err {
        InterleaveError::FinalCheckFailed { message, schedule } => {
            assert!(message.contains("lost update"), "{message}");
            assert!(!schedule.is_empty(), "witness schedule is reported");
        }
        other => panic!("unexpected failure kind: {other:?}"),
    }
}
