//! Observability invariants: profiling must change *nothing* about the
//! simulation — results are bit-for-bit identical with it on or off — and
//! must report every documented phase of a real run.

use avfs::atpg::PatternSet;
use avfs::circuits::ripple_carry_adder;
use avfs::delay::characterize::{characterize_library, CharacterizationConfig};
use avfs::delay::CharacterizedLibrary;
use avfs::netlist::{CellLibrary, Netlist, NodeKind};
use avfs::sim::{phases, slots, Engine, EventDrivenSimulator, SimOptions, SimRun};
use avfs::spice::Technology;
use std::collections::BTreeSet;
use std::sync::Arc;

fn characterize_for(netlist: &Netlist, library: &Arc<CellLibrary>) -> CharacterizedLibrary {
    let used: Vec<_> = {
        let mut set = BTreeSet::new();
        for (_, node) in netlist.iter() {
            if let NodeKind::Gate(cell) = node.kind() {
                set.insert(cell);
            }
        }
        set.into_iter().collect()
    };
    characterize_library(
        library,
        &Technology::nm15(),
        &CharacterizationConfig::fast(),
        Some(&used),
    )
    .expect("characterization succeeds")
}

/// A run that exercises every engine phase: multi-level circuit, several
/// patterns, two voltages, waveforms retained.
fn run_adder(profiling: bool) -> SimRun {
    let library = CellLibrary::nangate15_like();
    let netlist = Arc::new(ripple_carry_adder(8, &library).expect("adder builds"));
    let chars = characterize_for(&netlist, &library);
    let annotation = Arc::new(chars.annotate(&netlist).expect("annotation"));
    let engine = Engine::new(
        Arc::clone(&netlist),
        annotation,
        Arc::new(chars.model().clone()),
    )
    .expect("engine builds");
    let patterns = PatternSet::lfsr(netlist.inputs().len(), 12, 7);
    let mut slot_list = slots::at_voltage(patterns.len(), 0.8);
    slot_list.extend(slots::at_voltage(patterns.len(), 0.6));
    let options = SimOptions {
        threads: 2,
        keep_waveforms: true,
        profiling,
        ..SimOptions::default()
    };
    engine
        .run(&patterns, &slot_list, &options)
        .expect("engine runs")
}

#[test]
fn profiling_is_observation_only() {
    let plain = run_adder(false);
    let profiled = run_adder(true);
    assert!(plain.profile.is_none());
    assert!(profiled.profile.is_some());
    // Bit-for-bit identical simulation: every slot (responses, arrival
    // times, activity, full waveforms), the evaluation count and the
    // diagnostics. Only `elapsed` and `profile` may differ.
    assert_eq!(plain.slots, profiled.slots);
    assert_eq!(plain.node_evaluations, profiled.node_evaluations);
    assert_eq!(plain.diagnostics, profiled.diagnostics);
}

#[test]
fn profile_reports_every_documented_phase() {
    let run = run_adder(true);
    let profile = run.profile.as_ref().expect("profiling was on");
    assert_eq!(profile.name, "engine");
    for phase in phases::ENGINE_PHASES {
        let stats = profile
            .phase(phase)
            .unwrap_or_else(|| panic!("phase `{phase}` missing from profile"));
        assert!(stats.calls > 0, "phase `{phase}` never called");
        assert!(stats.total_ns > 0, "phase `{phase}` has zero total time");
        assert!(stats.min_ns <= stats.max_ns, "phase `{phase}` min > max");
    }
    // The run phase dominates any sub-phase by construction.
    let total = profile.phase(phases::ENGINE_RUN).unwrap().total_ns;
    for phase in phases::ENGINE_PHASES {
        assert!(profile.phase(phase).unwrap().total_ns <= total);
    }
    // Counters and histograms of the same run.
    assert!(profile.counter(phases::ENGINE_KERNEL_EVALS).unwrap() > 0);
    assert!(profile.counter(phases::ENGINE_LEVELS).unwrap() > 0);
    assert!(profile.counter(phases::ENGINE_BATCHES).unwrap() > 0);
    assert_eq!(
        profile.counter(phases::ENGINE_RETRY_ROUNDS),
        None,
        "no retries expected"
    );
    let occupancy = profile
        .histogram(phases::ENGINE_ARENA_OCCUPANCY)
        .expect("arena occupancy recorded");
    assert!(occupancy.count > 0);
    assert_eq!(
        occupancy.max as usize, run.diagnostics.peak_arena_occupancy,
        "histogram max agrees with diagnostics"
    );
    // Worker-pool instrumentation (the run used threads = 2): coordinator
    // wait time at the level barriers, the work-stealing counter, and one
    // per-worker task-count sample each.
    let idle = profile
        .phase(phases::ENGINE_POOL_IDLE)
        .expect("pool idle recorded for a threads=2 run");
    assert!(idle.calls > 0, "one idle sample per pooled level");
    assert!(
        profile.counter(phases::ENGINE_POOL_STEALS).is_some(),
        "steal counter present (possibly zero)"
    );
    let worker_tasks = profile
        .histogram(phases::ENGINE_POOL_WORKER_TASKS)
        .expect("per-worker task histogram recorded");
    assert_eq!(worker_tasks.count, 2, "one sample per pool worker");
    // Activity-gating instruments (gating is on by default): the skip
    // counter exists even when busy stimuli leave nothing to skip, the
    // quiet-cell tally exists even when every net toggled, and every
    // gated level samples its activity share as a 0–100 percentage.
    assert!(
        profile
            .counter(phases::ENGINE_GATES_SKIPPED_QUIET)
            .is_some(),
        "quiet-skip counter present under default (gated) options"
    );
    assert!(
        profile.counter(phases::ENGINE_QUIET_CELLS).is_some(),
        "quiet-cell tally present"
    );
    let level_activity = profile
        .histogram(phases::ENGINE_LEVEL_ACTIVITY)
        .expect("per-level activity histogram recorded");
    assert!(level_activity.count > 0, "one sample per gated level");
    assert!(
        level_activity.max <= 100,
        "activity is a percentage of the level's tasks"
    );
    // Robustness counters are recorded unconditionally, so a clean run
    // reports them present *and zero* — their absence would mean the
    // instrumentation rotted, a nonzero value an unexpected fault.
    for counter in [
        phases::ENGINE_FAULTS_INJECTED,
        phases::ENGINE_DEADLINE_ABORTS,
        phases::ENGINE_BUDGET_DENIALS,
    ] {
        assert_eq!(
            profile.counter(counter),
            Some(0),
            "robustness counter `{counter}` must be present and zero on a clean run"
        );
    }
    // The profile survives its JSON round-trip unchanged.
    let json = profile.to_json().to_string_pretty();
    let parsed = avfs::obs::Json::parse(&json).expect("valid JSON");
    let back = avfs::obs::Profile::from_json(&parsed).expect("valid profile");
    assert_eq!(&back, profile);
}

#[test]
fn event_driven_profile_and_identity() {
    let library = CellLibrary::nangate15_like();
    let netlist = Arc::new(ripple_carry_adder(6, &library).expect("adder builds"));
    let chars = characterize_for(&netlist, &library);
    let annotation = Arc::new(chars.annotate(&netlist).expect("annotation"));
    let ed = EventDrivenSimulator::new(Arc::clone(&netlist), annotation).expect("positive delays");
    let patterns = PatternSet::lfsr(netlist.inputs().len(), 8, 3);
    let slot_list = slots::at_voltage(patterns.len(), 0.8);

    let plain = ed.run(&patterns, &slot_list, true).expect("baseline runs");
    let profiled = ed
        .run_profiled(&patterns, &slot_list, true, true)
        .expect("profiled baseline runs");
    assert!(plain.profile.is_none());
    assert_eq!(plain.slots, profiled.slots);
    assert_eq!(plain.node_evaluations, profiled.node_evaluations);

    let profile = profiled.profile.as_ref().expect("profiling was on");
    assert_eq!(profile.name, "event_driven");
    assert!(profile.phase(phases::ED_SIMULATE).unwrap().total_ns > 0);
    assert!(profile.counter(phases::ED_EVENTS).unwrap() > 0);
    let depth = profile
        .histogram(phases::ED_QUEUE_DEPTH)
        .expect("queue depth sampled");
    assert!(depth.count > 0);
    assert!(depth.max >= 1, "the queue held at least one event");
}
