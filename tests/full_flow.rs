//! End-to-end integration: characterization → annotation → simulation,
//! cross-validated between the parallel engine and the event-driven
//! baseline.

use avfs::atpg::PatternSet;
use avfs::circuits::{random_netlist, ripple_carry_adder, GeneratorConfig};
use avfs::delay::characterize::{characterize_library, CharacterizationConfig};
use avfs::delay::{CharacterizedLibrary, StaticModel};
use avfs::netlist::{CellLibrary, Netlist, NodeKind};
use avfs::sim::{slots, Engine, EventDrivenSimulator, SimOptions, TimeSimulator};
use avfs::spice::Technology;
use std::collections::BTreeSet;
use std::sync::Arc;

fn characterize_for(netlist: &Netlist, library: &Arc<CellLibrary>) -> CharacterizedLibrary {
    let used: Vec<_> = {
        let mut set = BTreeSet::new();
        for (_, node) in netlist.iter() {
            if let NodeKind::Gate(cell) = node.kind() {
                set.insert(cell);
            }
        }
        set.into_iter().collect()
    };
    characterize_library(
        library,
        &Technology::nm15(),
        &CharacterizationConfig::fast(),
        Some(&used),
    )
    .expect("characterization succeeds")
}

#[test]
fn engine_matches_event_driven_on_adder() {
    let library = CellLibrary::nangate15_like();
    let netlist = Arc::new(ripple_carry_adder(8, &library).expect("adder builds"));
    let chars = characterize_for(&netlist, &library);
    let annotation = Arc::new(chars.annotate(&netlist).expect("annotation"));

    let engine = Engine::new(
        Arc::clone(&netlist),
        Arc::clone(&annotation),
        Arc::new(StaticModel::new(*chars.space())),
    )
    .expect("engine builds");
    let baseline = EventDrivenSimulator::new(Arc::clone(&netlist), Arc::clone(&annotation))
        .expect("positive delays");

    let patterns = PatternSet::lfsr(netlist.inputs().len(), 12, 9);
    let slot_list = slots::at_voltage(patterns.len(), 0.8);
    let opts = SimOptions {
        threads: 1,
        keep_waveforms: true,
        ..SimOptions::default()
    };
    let a = engine
        .run(&patterns, &slot_list, &opts)
        .expect("engine runs");
    let b = baseline
        .run(&patterns, &slot_list, true)
        .expect("baseline runs");
    for (sa, sb) in a.slots.iter().zip(&b.slots) {
        let (wa, wb) = (
            sa.waveforms.as_ref().expect("kept"),
            sb.waveforms.as_ref().expect("kept"),
        );
        for (id, node) in netlist.iter() {
            assert_eq!(
                wa[id.index()],
                wb[id.index()],
                "waveform mismatch at {} pattern {}",
                node.name(),
                sa.spec.pattern
            );
        }
    }
}

#[test]
fn final_values_match_zero_delay_semantics() {
    // The steady state of a glitch-accurate simulation is delay-model
    // independent and must equal the zero-delay evaluation of the capture
    // vector.
    let library = CellLibrary::nangate15_like();
    let cfg = GeneratorConfig {
        nodes: 300,
        inputs: 20,
        outputs: 20,
        depth: 14,
        two_input_fraction: 0.7,
    };
    let netlist = Arc::new(random_netlist("zchk", &cfg, &library, 21).expect("generates"));
    let chars = characterize_for(&netlist, &library);
    let sim = TimeSimulator::from_characterization(Arc::clone(&netlist), &chars)
        .expect("simulator builds");

    let patterns = PatternSet::random(netlist.inputs().len(), 10, 33);
    let levels = avfs::netlist::Levelization::of(&netlist).expect("acyclic");
    for &voltage in &[0.55, 0.8, 1.1] {
        let run = sim
            .run_at(
                &patterns,
                voltage,
                &SimOptions {
                    threads: 1,
                    ..SimOptions::default()
                },
            )
            .expect("runs");
        for slot in &run.slots {
            let expect = avfs::atpg::zero_delay_values(
                &netlist,
                &levels,
                &patterns.pairs()[slot.spec.pattern].capture,
            );
            for (k, &po) in netlist.outputs().iter().enumerate() {
                assert_eq!(
                    slot.responses[k],
                    expect[po.index()],
                    "response mismatch at {voltage} V, output {k}"
                );
            }
        }
    }
}

#[test]
fn multithreaded_engine_equals_serial() {
    let library = CellLibrary::nangate15_like();
    let netlist = Arc::new(ripple_carry_adder(12, &library).expect("adder builds"));
    let chars = characterize_for(&netlist, &library);
    let sim = TimeSimulator::from_characterization(Arc::clone(&netlist), &chars)
        .expect("simulator builds");
    let patterns = PatternSet::lfsr(netlist.inputs().len(), 8, 4);
    let serial = sim
        .voltage_sweep(
            &patterns,
            &[0.6, 0.9],
            &SimOptions {
                threads: 1,
                ..SimOptions::default()
            },
        )
        .expect("serial run");
    let parallel = sim
        .voltage_sweep(
            &patterns,
            &[0.6, 0.9],
            &SimOptions {
                threads: 8,
                ..SimOptions::default()
            },
        )
        .expect("parallel run");
    for (a, b) in serial.slots.iter().zip(&parallel.slots) {
        assert_eq!(a.spec.pattern, b.spec.pattern);
        assert_eq!(a.responses, b.responses);
        assert_eq!(a.latest_output_transition_ps, b.latest_output_transition_ps);
        assert_eq!(a.activity, b.activity);
    }
}

#[test]
fn hot_corner_characterization_slows_the_design() {
    // PVT: characterize the same library at 27 °C and 125 °C; the hot
    // corner's annotated netlist must be slower end to end at full
    // supply (mobility-limited regime).
    let library = CellLibrary::nangate15_like();
    let netlist = Arc::new(ripple_carry_adder(6, &library).expect("adder"));
    let used: Vec<_> = {
        let mut set = BTreeSet::new();
        for (_, node) in netlist.iter() {
            if let NodeKind::Gate(cell) = node.kind() {
                set.insert(cell);
            }
        }
        set.into_iter().collect()
    };
    let characterize_at = |tech: &Technology| {
        characterize_library(&library, tech, &CharacterizationConfig::fast(), Some(&used))
            .expect("characterizes")
    };
    let nom_tech = Technology::nm15();
    let chars_nom = characterize_at(&nom_tech);
    let chars_hot = characterize_at(&nom_tech.at_temperature(125.0));

    let patterns = PatternSet::lfsr(netlist.inputs().len(), 12, 6);
    let opts = SimOptions::default();
    let arrival = |chars: &CharacterizedLibrary| {
        TimeSimulator::from_characterization(Arc::clone(&netlist), chars)
            .expect("builds")
            .run_at(&patterns, 1.0, &opts)
            .expect("runs")
            .latest_arrival_at(1.0)
            .expect("toggles")
    };
    let t_nom = arrival(&chars_nom);
    let t_hot = arrival(&chars_hot);
    assert!(
        t_hot > t_nom * 1.05,
        "hot corner must be noticeably slower: {t_hot} vs {t_nom}"
    );
}

#[test]
fn verilog_roundtrip_of_generated_netlists() {
    // Generator → writer → parser round trips preserve structure across
    // random seeds (a fuzz-ish pass over the full netlist tool chain).
    let library = CellLibrary::nangate15_like();
    for seed in 0..6u64 {
        let cfg = GeneratorConfig {
            nodes: 150 + 40 * seed as usize,
            inputs: 12,
            outputs: 12,
            depth: 10,
            two_input_fraction: 0.6 + 0.05 * (seed % 3) as f64,
        };
        let original = random_netlist("fuzz", &cfg, &library, seed).expect("generates");
        let text = avfs::netlist::verilog::write_verilog(&original);
        let reparsed = avfs::netlist::verilog::parse_verilog(&text, &library)
            .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}"));
        assert_eq!(original.num_gates(), reparsed.num_gates(), "seed {seed}");
        assert_eq!(original.inputs().len(), reparsed.inputs().len());
        assert_eq!(original.outputs().len(), reparsed.outputs().len());
        // Every gate keeps its cell type and fan-in names.
        for (id, node) in original.iter() {
            if matches!(node.kind(), NodeKind::Gate(_)) {
                let other = reparsed
                    .find(node.name())
                    .unwrap_or_else(|| panic!("seed {seed}: lost gate {}", node.name()));
                assert_eq!(
                    original.cell_of(id).expect("gate").name(),
                    reparsed.cell_of(other).expect("gate").name()
                );
            }
        }
    }
}

#[test]
fn sta_agrees_with_k_longest_path_enumeration() {
    // Two independent implementations of the same definition: the STA DP
    // (avfs-core) and the best-first path enumeration (avfs-atpg) must
    // report the same longest-path length on the same annotation.
    let library = CellLibrary::nangate15_like();
    for seed in [1u64, 2, 3] {
        let cfg = GeneratorConfig {
            nodes: 250,
            inputs: 16,
            outputs: 16,
            depth: 12,
            two_input_fraction: 0.7,
        };
        let netlist = Arc::new(random_netlist("sta_x", &cfg, &library, seed).expect("generates"));
        let chars = characterize_for(&netlist, &library);
        let annotation = chars.annotate(&netlist).expect("annotates");
        let levels = avfs::netlist::Levelization::of(&netlist).expect("acyclic");
        let sta = avfs::sim::sta::longest_path(&netlist, &levels, &annotation);
        let paths = avfs::atpg::k_longest_paths(&netlist, &levels, Some(&annotation), 1);
        assert_eq!(paths.len(), 1);
        assert!(
            (sta.longest_path_ps - paths[0].length).abs() < 1e-6,
            "seed {seed}: STA {} vs enumeration {}",
            sta.longest_path_ps,
            paths[0].length
        );
    }
}

#[test]
fn kernel_persistence_preserves_simulation() {
    // Save the compiled kernels to text, reload them, and verify the
    // restored simulator reproduces arrivals bit-for-bit.
    let library = CellLibrary::nangate15_like();
    let netlist = Arc::new(ripple_carry_adder(8, &library).expect("adder"));
    let chars = characterize_for(&netlist, &library);
    let text = avfs::delay::io::write_kernels(&chars.to_package(&library));
    let package = avfs::delay::io::read_kernels(&text).expect("own output parses");
    let restored = avfs::delay::CharacterizedLibrary::from_package(&package, &library)
        .expect("package restores");

    let patterns = PatternSet::lfsr(netlist.inputs().len(), 8, 12);
    let opts = SimOptions {
        threads: 1,
        ..SimOptions::default()
    };
    let sim_a = TimeSimulator::from_characterization(Arc::clone(&netlist), &chars).expect("builds");
    let sim_b =
        TimeSimulator::from_characterization(Arc::clone(&netlist), &restored).expect("builds");
    for &v in &[0.55, 0.8, 1.1] {
        let a = sim_a.run_at(&patterns, v, &opts).expect("runs");
        let b = sim_b.run_at(&patterns, v, &opts).expect("runs");
        for (x, y) in a.slots.iter().zip(&b.slots) {
            assert_eq!(x.responses, y.responses);
            assert_eq!(x.latest_output_transition_ps, y.latest_output_transition_ps);
        }
    }
}

#[test]
fn sta_bounds_simulated_arrivals() {
    let library = CellLibrary::nangate15_like();
    let netlist = Arc::new(ripple_carry_adder(10, &library).expect("adder builds"));
    let chars = characterize_for(&netlist, &library);
    let sim = TimeSimulator::from_characterization(Arc::clone(&netlist), &chars)
        .expect("simulator builds");
    let sta = sim.sta();
    assert!(sta.longest_path_ps > 0.0);
    let patterns = PatternSet::lfsr(netlist.inputs().len(), 24, 77);
    let run = sim
        .run_at(&patterns, 0.8, &SimOptions::default())
        .expect("runs");
    let latest = run.latest_arrival_at(0.8).expect("adder toggles");
    // Allow the fit's small nominal deviation on top of the bound.
    assert!(
        latest <= sta.longest_path_ps * 1.02,
        "simulated arrival {latest} exceeds STA bound {}",
        sta.longest_path_ps
    );
}
