//! Fault-isolation acceptance tests: the bounded-arena quarantine-and-
//! retry loop and panic containment, cross-validated against the serial
//! event-driven oracle.

use avfs::atpg::pattern::{Pattern, PatternPair};
use avfs::atpg::PatternSet;
use avfs::circuits::{random_netlist, GeneratorConfig};
use avfs::delay::model::DelayModel;
use avfs::delay::op::NormalizedPoint;
use avfs::delay::{DelayError, ParameterSpace, StaticModel, TimingAnnotation};
use avfs::netlist::library::Polarity;
use avfs::netlist::{CellId, CellLibrary, Netlist, NetlistBuilder, NodeKind};
use avfs::sim::{slots, Engine, EventDrivenSimulator, SimError, SimOptions, SimRun, SlotStatus};
use avfs::waveform::PinDelays;
use proptest::prelude::*;
use std::sync::Arc;

/// Uniform static pin delays so the engine (factor-1 model) and the
/// event-driven oracle share exact delay semantics.
fn static_annotation(netlist: &Netlist, rise: f64, fall: f64) -> TimingAnnotation {
    let mut ann = TimingAnnotation::zero(netlist);
    for (id, node) in netlist.iter() {
        if matches!(node.kind(), NodeKind::Gate(_)) {
            for pin in 0..node.fanin().len() {
                ann.node_delays_mut(id)[pin] = PinDelays { rise, fall };
            }
        }
    }
    ann
}

/// Asserts one engine slot equals one oracle slot bit-for-bit: responses,
/// arrival time, activity, and every per-net waveform.
fn assert_slot_matches_oracle(run: &SimRun, oracle: &SimRun, slot: usize) {
    let a = &run.slots[slot];
    let b = &oracle.slots[slot];
    assert_eq!(a.responses, b.responses, "slot {slot} responses");
    assert_eq!(
        a.latest_output_transition_ps, b.latest_output_transition_ps,
        "slot {slot} arrival"
    );
    assert_eq!(a.activity, b.activity, "slot {slot} activity");
    assert_eq!(a.waveforms, b.waveforms, "slot {slot} waveforms");
}

/// A glitch multiplier: every stage XORs its input with a delayed copy,
/// roughly doubling the transition count — after a few stages the deep
/// nets overflow any small per-net waveform capacity.
fn glitch_cascade(stages: usize) -> Arc<Netlist> {
    let lib = CellLibrary::nangate15_like();
    let mut b = NetlistBuilder::new("glitch-cascade", &lib);
    let mut cur = b.add_input("a").unwrap();
    for s in 0..stages {
        let i1 = b.add_gate(format!("i{s}a"), "INV_X1", &[cur]).unwrap();
        let i2 = b.add_gate(format!("i{s}b"), "INV_X1", &[i1]).unwrap();
        cur = b.add_gate(format!("x{s}"), "XOR2_X1", &[cur, i2]).unwrap();
    }
    b.add_output("y", cur).unwrap();
    Arc::new(b.finish().unwrap())
}

#[test]
fn overflow_quarantine_retries_until_result_matches_oracle() {
    let netlist = glitch_cascade(3);
    let annotation = Arc::new(static_annotation(&netlist, 7.0, 5.0));
    let engine = Engine::new(
        Arc::clone(&netlist),
        Arc::clone(&annotation),
        Arc::new(StaticModel::new(ParameterSpace::paper())),
    )
    .unwrap();
    let patterns: PatternSet = std::iter::once(
        PatternPair::new(Pattern::from_bits([false]), Pattern::from_bits([true])).unwrap(),
    )
    .collect();
    let specs = slots::cross(1, &[0.8]);
    let opts = SimOptions {
        threads: 2,
        keep_waveforms: true,
        arena_capacity: 2, // deliberately too small for the cascade
        ..SimOptions::default()
    };
    let run = engine.run(&patterns, &specs, &opts).unwrap();

    // The slot overflowed, was quarantined and completed on a retry.
    assert!(run.is_complete());
    assert!(
        run.diagnostics.slot_retries >= 1,
        "expected at least one retry"
    );
    assert_eq!(run.diagnostics.overflowed_slots, vec![0]);
    assert!(run.diagnostics.failed_slots.is_empty());
    match run.slots[0].status {
        SlotStatus::Completed { retries } => assert!(retries >= 1),
        other => panic!("expected a completed slot, got {other:?}"),
    }
    assert!(run.diagnostics.peak_arena_occupancy > 2);

    // The retried result is bit-for-bit the oracle's.
    let oracle = EventDrivenSimulator::new(Arc::clone(&netlist), annotation)
        .unwrap()
        .run(&patterns, &specs, true)
        .unwrap();
    assert_slot_matches_oracle(&run, &oracle, 0);
}

/// Panics for operating points at the top of the normalized voltage range
/// (1.1 V in the paper space) — the per-slot fault-injection vehicle.
#[derive(Debug)]
struct PanickyModel {
    inner: StaticModel,
}

impl DelayModel for PanickyModel {
    fn factor(
        &self,
        cell: CellId,
        pin: usize,
        polarity: Polarity,
        p: NormalizedPoint,
    ) -> Result<f64, DelayError> {
        assert!(p.v < 0.999, "injected fault: poisoned operating point");
        self.inner.factor(cell, pin, polarity, p)
    }
    fn name(&self) -> &str {
        "panicky"
    }
    fn space(&self) -> &ParameterSpace {
        self.inner.space()
    }
}

#[test]
fn panicked_slot_is_quarantined_while_others_match_oracle() {
    let lib = CellLibrary::nangate15_like();
    let cfg = GeneratorConfig {
        nodes: 80,
        inputs: 8,
        outputs: 8,
        depth: 6,
        two_input_fraction: 0.7,
    };
    let netlist = Arc::new(random_netlist("rnd", &cfg, &lib, 23).unwrap());
    let annotation = Arc::new(static_annotation(&netlist, 9.0, 11.0));
    let engine = Engine::new(
        Arc::clone(&netlist),
        Arc::clone(&annotation),
        Arc::new(PanickyModel {
            inner: StaticModel::new(ParameterSpace::paper()),
        }),
    )
    .unwrap();
    let patterns = PatternSet::lfsr(netlist.inputs().len(), 3, 7);
    // Slot 2 sits at the poisoned 1.1 V operating point.
    let voltages = [0.8, 0.7, 1.1, 0.9];
    let specs = slots::cross(patterns.len(), &voltages);
    let poisoned: Vec<usize> = specs
        .iter()
        .enumerate()
        .filter(|(_, s)| s.voltage == 1.1)
        .map(|(i, _)| i)
        .collect();
    let opts = SimOptions {
        threads: 4,
        keep_waveforms: true,
        ..SimOptions::default()
    };
    let run = engine.run(&patterns, &specs, &opts).unwrap();

    assert!(!run.is_complete());
    assert_eq!(run.diagnostics.panicked_slots, poisoned);
    assert_eq!(run.diagnostics.failed_slots, poisoned);

    // Every healthy slot matches the event-driven oracle bit-for-bit
    // (static factors → identical delay semantics).
    let oracle = EventDrivenSimulator::new(Arc::clone(&netlist), annotation)
        .unwrap()
        .run(&patterns, &specs, true)
        .unwrap();
    for (i, slot) in run.slots.iter().enumerate() {
        if poisoned.contains(&i) {
            assert_eq!(slot.status, SlotStatus::Panicked, "slot {i}");
            assert!(slot.responses.is_empty());
            assert!(slot.waveforms.is_none());
        } else {
            assert_eq!(slot.status, SlotStatus::Completed { retries: 0 });
            assert_slot_matches_oracle(&run, &oracle, i);
        }
    }
}

#[test]
fn every_slot_poisoned_is_a_run_error() {
    let netlist = glitch_cascade(1);
    let annotation = Arc::new(static_annotation(&netlist, 3.0, 3.0));
    let engine = Engine::new(
        Arc::clone(&netlist),
        annotation,
        Arc::new(PanickyModel {
            inner: StaticModel::new(ParameterSpace::paper()),
        }),
    )
    .unwrap();
    let patterns: PatternSet = std::iter::once(
        PatternPair::new(Pattern::from_bits([true]), Pattern::from_bits([false])).unwrap(),
    )
    .collect();
    match engine.run(&patterns, &slots::cross(1, &[1.1]), &SimOptions::default()) {
        Err(SimError::AllSlotsFailed { slots: 1 }) => {}
        other => panic!("expected AllSlotsFailed, got {other:?}"),
    }
}

/// A fixed engine + stimuli pair for the fault-plan property below: a
/// glitchy netlist (so injected overflows and retries actually bite)
/// with static delays and eight mixed-voltage slots.
fn chaos_fixture() -> (Engine, PatternSet, Vec<slots::SlotSpec>) {
    let netlist = glitch_cascade(3);
    let annotation = Arc::new(static_annotation(&netlist, 4.0, 6.0));
    let engine = Engine::new(
        Arc::clone(&netlist),
        annotation,
        Arc::new(StaticModel::new(ParameterSpace::paper())),
    )
    .unwrap();
    let patterns: PatternSet = std::iter::once(
        PatternPair::new(Pattern::from_bits([false]), Pattern::from_bits([true])).unwrap(),
    )
    .collect();
    let specs = slots::cross(
        patterns.len(),
        &[0.7, 0.8, 0.9, 1.0, 0.75, 0.85, 0.95, 1.05],
    );
    (engine, patterns, specs)
}

proptest! {
    /// Any randomized fault plan replays bit-for-bit from its seed
    /// alone: two runs under independently constructed plans with the
    /// same seed agree on every slot outcome and every diagnostic, and
    /// fire the exact same injection-site keys.
    #[test]
    fn randomized_fault_plans_replay_deterministically(
        seed in 0u64..1_000_000,
        max_rate in 0.0f64..0.6,
        threads in 1usize..5,
    ) {
        use avfs::inject::{FaultPlan, InjectionSite};
        let (engine, patterns, specs) = chaos_fixture();
        let run = |plan: Arc<FaultPlan>| {
            engine.run(
                &patterns,
                &specs,
                &SimOptions {
                    threads,
                    arena_capacity: 4, // small enough for organic retries
                    fault_plan: Some(plan),
                    ..SimOptions::default()
                },
            )
        };
        let a_plan = Arc::new(FaultPlan::randomized(seed, max_rate));
        let b_plan = Arc::new(FaultPlan::randomized(seed, max_rate));
        match (run(Arc::clone(&a_plan)), run(Arc::clone(&b_plan))) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a.slots, &b.slots);
                prop_assert_eq!(&a.diagnostics, &b.diagnostics);
                prop_assert_eq!(a.node_evaluations, b.node_evaluations);
            }
            (
                Err(SimError::AllSlotsFailed { slots: a }),
                Err(SimError::AllSlotsFailed { slots: b }),
            ) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(
                false,
                "replay outcome class diverged: {:?} vs {:?}",
                a.map(|r| r.summary()),
                b.map(|r| r.summary())
            ),
        }
        for site in InjectionSite::ALL {
            prop_assert_eq!(a_plan.fired_keys(site), b_plan.fired_keys(site));
        }
    }
}
