//! Quickstart: characterize, annotate and simulate the ISCAS'85 c17
//! benchmark under two supply voltages.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use avfs::atpg::PatternSet;
use avfs::delay::characterize::{characterize_library, CharacterizationConfig};
use avfs::netlist::CellLibrary;
use avfs::sim::{SimOptions, TimeSimulator};
use avfs::spice::Technology;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. The cell library and a netlist (c17 ships embedded).
    let library = CellLibrary::nangate15_like();
    let netlist = Arc::new(avfs::circuits::c17(&library)?);
    println!(
        "loaded `{}`: {}",
        netlist.name(),
        avfs::netlist::NetlistStats::of(&netlist)
    );

    // 2. Offline characterization (Fig. 1 of the paper): transient sweeps,
    //    regression, compiled polynomial delay kernels. c17 only uses
    //    NAND2_X1, so characterize just that cell.
    let nand2 = library.find("NAND2_X1").expect("library cell");
    let chars = characterize_library(
        &library,
        &Technology::nm15(),
        &CharacterizationConfig::default(),
        Some(&[nand2]),
    )?;
    let report = &chars.reports()[0];
    println!(
        "characterized {}: mean fit error {:.3}%, regression {:.1} ms",
        report.cell,
        100.0 * report.stats.mean,
        report.fit_millis
    );

    // 3. A simulator bound to the netlist, its nominal annotation and the
    //    polynomial delay model.
    let sim = TimeSimulator::from_characterization(Arc::clone(&netlist), &chars)?;

    // 4. Transition patterns and a two-voltage comparison, with the
    //    phase-level profile attached to the run.
    let patterns = PatternSet::lfsr(netlist.inputs().len(), 32, 42);
    let options = SimOptions {
        profiling: true,
        ..SimOptions::default()
    };
    let run = sim.voltage_sweep(&patterns, &[0.55, 0.8], &options)?;

    for v in [0.55, 0.8] {
        let latest = run.latest_arrival_at(v).expect("c17 outputs toggle");
        println!("V_DD = {v:.2} V → latest output transition {latest:.1} ps");
    }
    let t_low = run.latest_arrival_at(0.55).expect("toggles");
    let t_nom = run.latest_arrival_at(0.8).expect("toggles");
    println!(
        "slowdown at 0.55 V: {:.1}% — the voltage dependence AVFS validation must model",
        100.0 * (t_low / t_nom - 1.0)
    );
    // 5. The shared run summary: throughput, diagnostics and the profile
    //    (where did the milliseconds go — delay kernel, merge, barrier?).
    print!("{}", run.summary());
    Ok(())
}
