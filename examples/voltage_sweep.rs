//! Voltage sweep of a 16-bit ripple-carry adder — a miniature Table II.
//!
//! Characterizes the cells the adder instantiates, generates transition
//! patterns plus timing-aware patterns for the carry chain, then runs the
//! whole `patterns × voltages` grid in one engine launch and prints the
//! arrival-time row together with the STA bound.
//!
//! ```text
//! cargo run --release --example voltage_sweep
//! ```

use avfs::atpg::timing_aware::{collect_pairs, generate_timing_aware};
use avfs::atpg::{k_longest_paths, PatternSet};
use avfs::circuits::ripple_carry_adder;
use avfs::delay::characterize::{characterize_library, CharacterizationConfig};
use avfs::netlist::{CellLibrary, Levelization, NodeKind};
use avfs::sim::{cross_schedules, Schedule, SimOptions, TimeSimulator};
use avfs::spice::Technology;
use std::collections::BTreeSet;
use std::error::Error;
use std::sync::Arc;

const VOLTAGES: [f64; 6] = [0.55, 0.6, 0.7, 0.8, 0.9, 1.1];

fn main() -> Result<(), Box<dyn Error>> {
    let library = CellLibrary::nangate15_like();
    let netlist = Arc::new(ripple_carry_adder(16, &library)?);
    println!("adder: {}", avfs::netlist::NetlistStats::of(&netlist));

    // Characterize exactly the used cell types.
    let used: Vec<_> = {
        let mut set = BTreeSet::new();
        for (_, node) in netlist.iter() {
            if let NodeKind::Gate(cell) = node.kind() {
                set.insert(cell);
            }
        }
        set.into_iter().collect()
    };
    let chars = characterize_library(
        &library,
        &Technology::nm15(),
        &CharacterizationConfig::default(),
        Some(&used),
    )?;
    let sim = TimeSimulator::from_characterization(Arc::clone(&netlist), &chars)?;

    // Random transition pairs plus timing-aware patterns on the carry
    // chain (the adder's longest paths).
    let mut patterns = PatternSet::random(netlist.inputs().len(), 32, 7);
    let levels = Levelization::of(&netlist).expect("acyclic");
    let paths = k_longest_paths(&netlist, &levels, Some(sim.annotation()), 8);
    println!(
        "longest structural path: {:.1} ps over {} nodes",
        paths[0].length,
        paths[0].nodes.len()
    );
    let outcomes = generate_timing_aware(&netlist, &levels, &paths, 16, 3);
    let sensitized = outcomes.iter().filter(|o| o.sensitized).count();
    println!(
        "timing-aware patterns: {sensitized}/{} paths sensitized",
        outcomes.len()
    );
    patterns.extend(collect_pairs(&outcomes).iter().cloned());

    // The whole design-space slice in one launch.
    let run = sim.voltage_sweep(&patterns, &VOLTAGES, &SimOptions::default())?;
    let sta = sim.sta();
    println!("STA longest path (nominal): {:.1} ps", sta.longest_path_ps);
    println!(
        "{:>8} {:>14} {:>12}",
        "V_DD", "latest arrival", "vs nominal"
    );
    let nominal = run.latest_arrival_at(0.8).expect("outputs toggle");
    for v in VOLTAGES {
        let t = run.latest_arrival_at(v).expect("outputs toggle");
        println!(
            "{v:>7.2}V {t:>11.1} ps {:>11.1}%",
            100.0 * (t / nominal - 1.0)
        );
    }
    println!(
        "{} slots in {:?} ({:.1} MEPS)",
        run.slots.len(),
        run.elapsed,
        run.meps()
    );

    // The same grid as time-domain *scenarios*: a constant schedule is
    // bit-identical to the static slot above (DESIGN.md §15), while a
    // supply droop across the critical window stretches arrivals.
    let droop = Schedule::droop(0.8, 0.1, 0.25 * nominal, 0.8 * nominal);
    let scenarios = cross_schedules(patterns.len(), &[Schedule::constant(0.8), droop]);
    let scheduled = sim.run_scenarios(&patterns, &scenarios, None, None, &SimOptions::default())?;
    let constant_slice = &scheduled.slots[..patterns.len()];
    assert!(
        constant_slice
            .iter()
            .zip(
                &run.slots[run
                    .slots
                    .iter()
                    .position(|s| (s.spec.voltage - 0.8).abs() < 1e-12)
                    .expect("0.8 V slots")..]
            )
            .all(|(a, b)| a.latest_output_transition_ps == b.latest_output_transition_ps),
        "constant schedule must reproduce the static 0.8 V run bit-for-bit"
    );
    let drooped = scheduled.slots[patterns.len()..]
        .iter()
        .filter_map(|s| s.latest_output_transition_ps)
        .fold(0.0f64, f64::max);
    println!(
        "0.8 V with a 100 mV droop over [{:.0}, {:.0}] ps: latest arrival {drooped:.1} ps \
         ({:+.1}% vs the static 0.8 V run)",
        0.25 * nominal,
        0.8 * nominal,
        100.0 * (drooped / nominal - 1.0)
    );
    Ok(())
}
