//! Variation-aware small-delay fault grading across AVFS operating
//! points — the test-application the paper's introduction motivates
//! (small delay fault testing, variation-aware fault grading \[13\]).
//!
//! A small-delay defect that escapes the test at the nominal supply can
//! become detectable at a lowered supply (the defect consumes a larger
//! share of the shrunken slack) — the "faster-than-at-speed" insight.
//! This example grades the same fault list at three supplies, with and
//! without random process variation.
//!
//! ```text
//! cargo run --release --example fault_grading
//! ```

use avfs::atpg::PatternSet;
use avfs::circuits::ripple_carry_adder;
use avfs::delay::characterize::{characterize_library, CharacterizationConfig};
use avfs::delay::variation::{apply_variation, VariationConfig};
use avfs::netlist::{CellLibrary, NodeKind};
use avfs::sim::{DelayFaultSimulator, SimOptions, TimeSimulator};
use avfs::spice::Technology;
use std::collections::BTreeSet;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let library = CellLibrary::nangate15_like();
    let netlist = Arc::new(ripple_carry_adder(8, &library)?);

    let used: Vec<_> = {
        let mut set = BTreeSet::new();
        for (_, node) in netlist.iter() {
            if let NodeKind::Gate(cell) = node.kind() {
                set.insert(cell);
            }
        }
        set.into_iter().collect()
    };
    let chars = characterize_library(
        &library,
        &Technology::nm15(),
        &CharacterizationConfig::default(),
        Some(&used),
    )?;
    let sim = TimeSimulator::from_characterization(Arc::clone(&netlist), &chars)?;
    let annotation = Arc::clone(sim.annotation());
    let model: Arc<dyn avfs::delay::DelayModel> = Arc::new(chars.model().clone());

    // A fixed system clock with 25 % guardband over the *measured*
    // fault-free arrival at the nominal supply. Lowering the supply eats
    // the guardband, so a fixed-size defect consumes a growing share of
    // the remaining slack — the faster-than-at-speed effect, achieved
    // here by voltage instead of clock scaling.
    let patterns = PatternSet::lfsr(netlist.inputs().len(), 24, 19);
    let opts = SimOptions::default();
    let nominal_arrival = sim
        .run_at(&patterns, 0.8, &opts)?
        .latest_arrival_at(0.8)
        .expect("adder toggles");
    let capture_ps = nominal_arrival * 1.25;
    let delta_ps = nominal_arrival * 0.18;
    println!(
        "fault-free nominal arrival {nominal_arrival:.1} ps, capture {capture_ps:.1} ps, δ = {delta_ps:.1} ps"
    );

    println!(
        "{:>8} {:>12} {:>16} {:>18}  ({} faults, {} patterns)",
        "V_DD",
        "slack",
        "coverage",
        "coverage+var(5%)",
        netlist.num_gates(),
        patterns.len()
    );
    for &voltage in &[0.8, 0.75, 0.7] {
        let arrival = sim
            .run_at(&patterns, voltage, &opts)?
            .latest_arrival_at(voltage)
            .expect("adder toggles");
        // Nominal die.
        let fsim = DelayFaultSimulator::new(
            Arc::clone(&netlist),
            Arc::clone(&annotation),
            Arc::clone(&model),
            capture_ps,
        )?;
        let faults = fsim.full_fault_list(delta_ps);
        let verdicts = fsim.run(&faults, &patterns, voltage, &opts)?;
        let coverage = DelayFaultSimulator::coverage(&verdicts);

        // A process-varied die (same defect, different silicon).
        let varied = Arc::new(apply_variation(&annotation, &VariationConfig::sigma5(42)));
        let fsim_var =
            DelayFaultSimulator::new(Arc::clone(&netlist), varied, Arc::clone(&model), capture_ps)?;
        let verdicts_var = fsim_var.run(&faults, &patterns, voltage, &opts)?;
        let coverage_var = DelayFaultSimulator::coverage(&verdicts_var);

        println!(
            "{voltage:>7.2}V {:>9.1}ps {:>15.1}% {:>17.1}%",
            capture_ps - arrival,
            100.0 * coverage,
            100.0 * coverage_var
        );
    }
    println!("lowering V_DD shrinks slack, so the same small defect is caught more often");
    Ok(())
}
