//! The Fig.-1 characterization flow for a single cell, step by step:
//! transient sweep (A), grid densification (B), regression (C), kernel
//! compilation (D) — printing the intermediate artifacts.
//!
//! ```text
//! cargo run --release --example characterize_cell [-- NAND2_X4]
//! ```

use avfs::delay::characterize::{deviation_grid, fit_deviation_grid};
use avfs::delay::op::NormalizedPoint;
use avfs::delay::ParameterSpace;
use avfs::netlist::library::Polarity;
use avfs::netlist::CellLibrary;
use avfs::spice::{sweep::sweep_pin, SweepConfig, Technology};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let cell_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "NAND2_X1".to_owned());
    let library = CellLibrary::nangate15_like();
    let tech = Technology::nm15();
    let sweep = SweepConfig::paper();
    let space = ParameterSpace::paper();
    let id = library
        .find(&cell_name)
        .ok_or_else(|| format!("unknown cell `{cell_name}`"))?;
    let cell = library.cell(id);
    println!(
        "cell {cell_name}: {} input pins, output {}",
        cell.num_inputs(),
        cell.output_pin()
    );

    for pin in 0..cell.num_inputs() {
        for polarity in Polarity::both() {
            // Step A: transient parameter sweep.
            let surface = sweep_pin(&tech, cell, pin, polarity, &sweep)?;
            let d_nom = surface.at_point(0.8, 2.0);
            let d_slow = surface.at_point(0.55, 2.0);
            // Steps B–D: densify, regress, compile.
            let grid = deviation_grid(&surface, &space)?;
            let fit = fit_deviation_grid(&grid, 3, 4, 64)?;
            println!(
                "  pin {pin} {polarity:>4}: d(0.8V,2fF) = {d_nom:6.2} ps, d(0.55V,2fF) = {d_slow:6.2} ps | \
                 fit: {} coeffs, mean err {:.3}%, max {:.3}%, {:.2} ms",
                fit.poly.coefficients().len(),
                100.0 * fit.stats.mean,
                100.0 * fit.stats.max,
                fit.fit_millis
            );
        }
    }

    // Evaluate the compiled kernel like the simulator would (Eq. 9).
    let surface = sweep_pin(&tech, cell, 0, Polarity::Fall, &sweep)?;
    let grid = deviation_grid(&surface, &space)?;
    let fit = fit_deviation_grid(&grid, 3, 4, 64)?;
    println!("\ndeviation factors of pin 0 (fall) across the AVFS range at c = 4 fF:");
    for v in [0.55, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1] {
        let p = NormalizedPoint {
            v: space.phi_v().apply(v),
            c: space.phi_c().apply(4.0),
        };
        println!(
            "  V_DD {v:>4.2} V → d'/d_nom = {:.4}",
            1.0 + fit.poly.eval(p)
        );
    }
    Ok(())
}
