//! The file-based annotation flow: emit SDF + SPEF from a characterized
//! design, read both back, and verify the re-annotated simulation matches
//! — exactly what a tool exchange with a synthesis/STA flow looks like.
//!
//! ```text
//! cargo run --release --example sdf_flow
//! ```

use avfs::atpg::PatternSet;
use avfs::circuits::ripple_carry_adder;
use avfs::delay::characterize::{characterize_library, CharacterizationConfig};
use avfs::delay::StaticModel;
use avfs::netlist::{CellLibrary, NodeKind};
use avfs::sdf::{sdf, spef};
use avfs::sim::{SimOptions, TimeSimulator};
use avfs::spice::Technology;
use std::collections::BTreeSet;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let library = CellLibrary::nangate15_like();
    let netlist = Arc::new(ripple_carry_adder(8, &library)?);

    // Characterize and annotate (what an STA tool would compute).
    let used: Vec<_> = {
        let mut set = BTreeSet::new();
        for (_, node) in netlist.iter() {
            if let NodeKind::Gate(cell) = node.kind() {
                set.insert(cell);
            }
        }
        set.into_iter().collect()
    };
    let chars = characterize_library(
        &library,
        &Technology::nm15(),
        &CharacterizationConfig::default(),
        Some(&used),
    )?;
    let annotation = Arc::new(chars.annotate(&netlist)?);

    // Emit the interchange files.
    let sdf_text = sdf::write_sdf(&netlist, &annotation);
    let spef_text = spef::write_spef(&netlist, &annotation);
    println!(
        "emitted SDF ({} lines) and SPEF ({} lines); SDF excerpt:",
        sdf_text.lines().count(),
        spef_text.lines().count()
    );
    for line in sdf_text.lines().take(9) {
        println!("  {line}");
    }

    // Read both back into a fresh annotation.
    let mut parsed = sdf::parse_sdf(&netlist, &sdf_text)?;
    let loads = spef::parse_spef(&spef_text)?;
    spef::apply_spef(&netlist, &mut parsed, &loads)?;
    assert!(parsed.matches(&netlist));

    // Same simulation through both annotations must agree.
    let model = Arc::new(StaticModel::new(*chars.space()));
    let sim_a = TimeSimulator::new(Arc::clone(&netlist), annotation, Arc::clone(&model) as _)?;
    let sim_b = TimeSimulator::new(Arc::clone(&netlist), Arc::new(parsed), model as _)?;
    let patterns = PatternSet::lfsr(netlist.inputs().len(), 16, 5);
    let opts = SimOptions::default();
    let a = sim_a.run_at(&patterns, 0.8, &opts)?;
    let b = sim_b.run_at(&patterns, 0.8, &opts)?;
    for (x, y) in a.slots.iter().zip(&b.slots) {
        assert_eq!(x.responses, y.responses);
        let (ta, tb) = (
            x.latest_output_transition_ps.unwrap_or(0.0),
            y.latest_output_transition_ps.unwrap_or(0.0),
        );
        assert!((ta - tb).abs() < 1e-6, "arrival mismatch {ta} vs {tb}");
    }
    println!(
        "round-trip verified: {} patterns, identical responses and arrival times",
        patterns.len()
    );
    Ok(())
}
