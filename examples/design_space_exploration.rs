//! AVFS design-space exploration: find the minimum supply voltage that
//! meets each clock period — the use case the paper's introduction
//! motivates ("large-scale design space exploration of AVFS-based
//! systems").
//!
//! A scaled industrial-profile netlist is swept over a fine voltage grid
//! in a single engine launch; for each candidate clock period the lowest
//! voltage whose worst observed arrival time still fits is reported (plus
//! the switching-activity proxy for the power trade-off).
//!
//! ```text
//! cargo run --release --example design_space_exploration
//! ```

use avfs::atpg::PatternSet;
use avfs::circuits::CircuitProfile;
use avfs::delay::characterize::{characterize_library, CharacterizationConfig};
use avfs::netlist::{CellLibrary, NodeKind};
use avfs::sim::{
    cross_schedules, MonteCarlo, Schedule, SimOptions, TimeSimulator, VariationConfig,
};
use avfs::spice::Technology;
use std::collections::BTreeSet;
use std::error::Error;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn Error>> {
    let library = CellLibrary::nangate15_like();
    let profile = CircuitProfile::find("s38417").expect("profile exists");
    let netlist = Arc::new(profile.synthesize(0.05, &library)?);
    println!(
        "exploring {} (scale 0.05): {}",
        profile.name,
        avfs::netlist::NetlistStats::of(&netlist)
    );

    let used: Vec<_> = {
        let mut set = BTreeSet::new();
        for (_, node) in netlist.iter() {
            if let NodeKind::Gate(cell) = node.kind() {
                set.insert(cell);
            }
        }
        set.into_iter().collect()
    };
    let chars = characterize_library(
        &library,
        &Technology::nm15(),
        &CharacterizationConfig::default(),
        Some(&used),
    )?;
    let sim = TimeSimulator::from_characterization(Arc::clone(&netlist), &chars)?;

    // A fine AVFS voltage grid (the paper's interval at 0.05 V steps) and
    // a realistic pattern budget — all in ONE launch.
    let voltages: Vec<f64> = (0..12).map(|i| 0.55 + 0.05 * i as f64).collect();
    let patterns = PatternSet::lfsr(netlist.inputs().len(), 24, 11);
    let run = sim.voltage_sweep(&patterns, &voltages, &SimOptions::default())?;
    println!(
        "swept {} operating points x {} patterns = {} slots in {:?} ({:.1} MEPS)",
        voltages.len(),
        patterns.len(),
        run.slots.len(),
        run.elapsed,
        run.meps()
    );

    // Arrival and activity per voltage.
    let mut rows = Vec::new();
    for &v in &voltages {
        let latest = run.latest_arrival_at(v).expect("activity exists");
        let avg_toggles: f64 = run
            .slots
            .iter()
            .filter(|s| (s.spec.voltage - v).abs() < 1e-12)
            .map(|s| s.activity.total_transitions as f64)
            .sum::<f64>()
            / patterns.len() as f64;
        rows.push((v, latest, avg_toggles));
    }

    // Minimum-voltage operating points for candidate clock periods.
    println!(
        "{:>10} {:>12} — lowest V_DD meeting the period",
        "clock", "V_min"
    );
    let worst = rows.last().expect("rows exist").1;
    for target_ps in [
        1.1 * worst,
        1.3 * worst,
        1.6 * worst,
        2.0 * worst,
        2.6 * worst,
    ] {
        let vmin = rows
            .iter()
            .find(|(_, latest, _)| *latest <= target_ps)
            .map(|(v, _, _)| *v);
        match vmin {
            Some(v) => println!("{target_ps:>9.0}ps {v:>11.2}V"),
            None => println!("{target_ps:>9.0}ps {:>11}", "unreachable"),
        }
    }

    println!(
        "\n{:>8} {:>14} {:>16}",
        "V_DD", "latest [ps]", "avg toggles/pat"
    );
    for (v, latest, toggles) in &rows {
        println!("{v:>7.2}V {latest:>13.1} {toggles:>16.1}");
    }

    // Static V_min tables assume a quiet supply and a typical die. The
    // scenario engine stresses the same operating points with a supply
    // droop plus Monte Carlo process variation (DESIGN.md §15): how much
    // guard-band does each candidate V_DD really have at a 1.3x clock?
    let deadline = 1.3 * worst;
    let candidates: Vec<f64> = rows
        .iter()
        .map(|(v, _, _)| *v)
        .filter(|v| (0.6..=0.85).contains(v))
        .collect();
    let schedules: Vec<Schedule> = candidates
        .iter()
        .map(|&v| Schedule::droop(v, 0.05, 0.2 * deadline, 0.7 * deadline))
        .collect();
    let scenarios = cross_schedules(patterns.len(), &schedules);
    let mc = MonteCarlo {
        samples: 8,
        variation: VariationConfig {
            sigma: 0.04,
            max_deviation: 0.16,
            seed: 0xD5E,
        },
    };
    let stressed = sim.run_scenarios(
        &patterns,
        &scenarios,
        Some(&mc),
        Some(deadline),
        &SimOptions::default(),
    )?;
    let summary = stressed.scenario.as_ref().expect("scenario summary");
    println!(
        "\n50 mV droop + sigma-4% variation, {} dice/pattern, deadline {deadline:.0} ps:",
        mc.samples
    );
    println!(
        "{:>8} {:>9} {:>9} {:>8}",
        "V_DD", "samples", "failures", "p_fail"
    );
    for p in &summary.points {
        println!(
            "{:>7.2}V {:>9} {:>9} {:>8.3}",
            p.voltage, p.samples, p.failures, p.p_fail
        );
    }
    Ok(())
}
